// Section 5 extensions, measured: commodity-value awareness (A), layout
// slot significance (B), multi-view display (C), group-wise social benefit
// saturation (D), subgroup-change smoothing (E), plus the local-search
// polish on top of both AVG variants.
//
// Not a paper figure — the paper describes these extensions analytically —
// but DESIGN.md lists them as implemented features, and this harness
// quantifies each one's effect on a common instance.

#include "bench_util.h"

#include "core/avg.h"
#include "core/avg_d.h"
#include "core/extensions.h"
#include "core/local_search.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "util/logging.h"

namespace savg {
namespace {

void PrintTables() {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 40;
  params.num_items = 400;
  params.num_slots = 10;
  params.seed = 17;
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }
  Rng rng(99);
  std::vector<float> prices(params.num_items);
  for (float& p : prices) p = static_cast<float>(rng.Uniform(0.2, 3.0));
  inst->set_commodity_values(prices);
  std::vector<float> gamma(params.num_slots, 1.0f);
  gamma[params.num_slots / 2] = 9.0f;
  gamma[params.num_slots / 2 - 1] = 3.0f;
  inst->set_slot_weights(gamma);

  auto frac = SolveRelaxation(*inst);
  auto base = RunAvgD(*inst, *frac);
  if (!base.ok()) return;
  EvaluateOptions weighted;
  weighted.use_extension_weights = true;

  Table t({"extension", "metric", "before", "after"});

  // A. Commodity values: optimize the folded instance.
  {
    auto folded = FoldCommodityValues(*inst);
    auto frac_profit = SolveRelaxation(*folded);
    auto aware = RunAvgD(*folded, *frac_profit);
    t.NewRow()
        .Add("A commodity values")
        .Add("profit-weighted total")
        .Add(Evaluate(*inst, base->config, weighted).Total(), 2)
        .Add(Evaluate(*inst, aware->config, weighted).Total(), 2);
  }
  // B. Slot significance: global slot reordering.
  {
    const Configuration reordered = OptimizeSlotOrder(*inst, base->config);
    t.NewRow()
        .Add("B slot significance")
        .Add("slot-weighted total")
        .Add(Evaluate(*inst, base->config, weighted).Total(), 2)
        .Add(Evaluate(*inst, reordered, weighted).Total(), 2);
  }
  // C. Multi-view display with beta = 3.
  {
    const MultiViewConfig mv = ExtendToMultiView(*inst, base->config, 3);
    t.NewRow()
        .Add("C multi-view (beta=3)")
        .Add("scaled total")
        .Add(Evaluate(*inst, base->config).ScaledTotal(), 2)
        .Add(EvaluateMultiView(*inst, mv), 2);
  }
  // D. Group-wise saturation.
  {
    t.NewRow()
        .Add("D group-wise (sat=1)")
        .Add("scaled total")
        .Add(Evaluate(*inst, base->config).ScaledTotal(), 2)
        .Add(EvaluateGroupwise(*inst, base->config, 1.0), 2);
  }
  // E. Subgroup-change smoothing.
  {
    const Configuration smooth = MinimizeSubgroupChange(*inst, base->config);
    t.NewRow()
        .Add("E subgroup change")
        .Add("edit distance")
        .Add(static_cast<int64_t>(
            SubgroupChangeEditDistance(*inst, base->config)))
        .Add(static_cast<int64_t>(SubgroupChangeEditDistance(*inst, smooth)));
  }
  // Local-search polish on AVG and AVG-D.
  {
    AvgOptions avg_opt;
    avg_opt.seed = 17;
    auto avg = RunAvgBest(*inst, *frac, 3, avg_opt);
    auto avg_ls = ImproveByLocalSearch(*inst, avg->config);
    t.NewRow()
        .Add("local search on AVG")
        .Add("scaled total")
        .Add(avg_ls->initial_value, 2)
        .Add(avg_ls->final_value, 2);
    auto d_ls = ImproveByLocalSearch(*inst, base->config);
    t.NewRow()
        .Add("local search on AVG-D")
        .Add("scaled total")
        .Add(d_ls->initial_value, 2)
        .Add(d_ls->final_value, 2);
  }
  t.Print("Section 5 extensions on one Timik instance (n=40, m=400, k=10)");
  std::printf("LP bound for reference: %.2f\n", frac->lp_objective);
}

void BM_LocalSearchPolish(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 40;
  params.num_items = 400;
  params.num_slots = 10;
  params.seed = 17;
  auto inst = GenerateDataset(params);
  auto frac = SolveRelaxation(*inst);
  AvgOptions avg_opt;
  avg_opt.seed = 17;
  auto avg = RunAvg(*inst, *frac, avg_opt);
  for (auto _ : state) {
    auto improved = ImproveByLocalSearch(*inst, avg->config);
    benchmark::DoNotOptimize(improved);
  }
}
BENCHMARK(BM_LocalSearchPolish)->Unit(benchmark::kMillisecond);

void BM_MultiViewExtension(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 40;
  params.num_items = 400;
  params.num_slots = 10;
  params.seed = 17;
  auto inst = GenerateDataset(params);
  auto frac = SolveRelaxation(*inst);
  auto base = RunAvgD(*inst, *frac);
  for (auto _ : state) {
    auto mv = ExtendToMultiView(*inst, base->config,
                                static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(mv);
  }
}
BENCHMARK(BM_MultiViewExtension)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
