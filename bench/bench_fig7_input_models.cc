// Figure 7: total SAVG utility under different input utility models —
// PIERT (default, similarity-modulated influence), AGREE (uniform
// influence), GREE (per-triple weights).
//
// Expected shape: AVG/AVG-D on top for every input model (the method is
// generic in the input distribution).

#include "bench_util.h"

namespace savg {
namespace {

void PrintTables() {
  RunnerConfig config;
  config.relaxation.method = RelaxationMethod::kSubgradient;
  config.avg_repeats = 3;
  config.sdp.diversity_weight = 0.0;
  for (UtilityModelKind kind :
       {UtilityModelKind::kPiert, UtilityModelKind::kAgree,
        UtilityModelKind::kGree}) {
    DatasetParams params;
    params.kind = DatasetKind::kTimik;
    params.num_users = 60;
    params.num_items = 2000;
    params.num_slots = 20;
    params.seed = 7;
    params.utility.kind = kind;
    auto rows =
        RunComparisonNamed(params, /*samples=*/3,
                           benchutil::AlgosOrDefault(false), config,
                           benchutil::WorkerOverride());
    if (!rows.ok()) {
      std::cerr << rows.status() << "\n";
      continue;
    }
    Table t({"algorithm", "total", "personal part", "social part"});
    for (const AggregateRow& row : *rows) {
      t.NewRow()
          .Add(row.name)
          .Add(row.mean_scaled_total, 1)
          .Add(row.mean_preference, 1)
          .Add(row.mean_social, 1);
    }
    t.Print(std::string("Fig 7: input model ") + UtilityModelKindName(kind));
  }
}

void BM_PopulateUtilities(benchmark::State& state) {
  const UtilityModelKind kind = static_cast<UtilityModelKind>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    DatasetParams params;
    params.kind = DatasetKind::kTimik;
    params.num_users = 60;
    params.num_items = 2000;
    params.num_slots = 20;
    params.seed = rng.Next();
    params.utility.kind = kind;
    auto inst = GenerateDataset(params);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_PopulateUtilities)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
