// Figures 14 and 15: SVGIC-ST total utility under subgroup size caps
// M in {3, 5, 15}, on Timik-like (Fig 14) and Epinions-like (Fig 15)
// instances with n = 15. Following the paper, baselines run with the
// pre-partitioning wrapper, and an infeasible configuration (any size-cap
// violation) scores 0.
//
// Expected shapes: AVG wins except possibly at the very tight cap on the
// sparse network; baselines frequently forfeit entire instances through
// violations even when pre-partitioned.

#include "bench_util.h"

#include "baselines/fmg.h"
#include "baselines/grf.h"
#include "baselines/per.h"
#include "baselines/sdp.h"
#include "baselines/st_prepartition.h"
#include "core/avg_st.h"
#include "core/objective.h"

namespace savg {
namespace {

void PrintDataset(DatasetKind kind) {
  const int kInstances = 8;
  const double kDtel = 0.5;
  Table t({"M", "AVG", "PER", "FMG-P", "SDP-P", "GRF-P"});
  for (int cap : {3, 5, 15}) {
    double u_avg = 0, u_per = 0, u_fmg = 0, u_sdp = 0, u_grf = 0;
    for (int sample = 0; sample < kInstances; ++sample) {
      DatasetParams params;
      params.kind = kind;
      params.num_users = 15;
      params.num_items = 60;
      params.num_slots = 5;
      params.seed = 150 + sample;
      auto inst = GenerateDataset(params);
      if (!inst.ok()) continue;
      EvaluateOptions st_eval;
      st_eval.d_tel = kDtel;
      auto score = [&](const Result<Configuration>& config) {
        if (!config.ok()) return 0.0;
        if (SizeConstraintViolation(*config, cap) > 0) return 0.0;
        return Evaluate(*inst, *config, st_eval).ScaledTotal();
      };
      StOptions st;
      st.size_cap = cap;
      st.d_tel = kDtel;
      st.avg.seed = sample;
      auto avg = RunAvgSt(*inst, st);
      if (avg.ok()) {
        u_avg += score(Result<Configuration>(Configuration(avg->config)));
      }
      u_per += score(RunPersonalizedTopK(*inst));
      u_fmg += score(RunWithPrepartition(
          *inst, cap, sample,
          [](const SvgicInstance& sub) { return RunFmg(sub); }));
      u_sdp += score(RunWithPrepartition(
          *inst, cap, sample,
          [](const SvgicInstance& sub) { return RunSdp(sub); }));
      u_grf += score(RunWithPrepartition(
          *inst, cap, sample,
          [](const SvgicInstance& sub) { return RunGrf(sub); }));
    }
    const double inv = 1.0 / kInstances;
    t.NewRow()
        .Add(static_cast<int64_t>(cap))
        .Add(u_avg * inv, 2)
        .Add(u_per * inv, 2)
        .Add(u_fmg * inv, 2)
        .Add(u_sdp * inv, 2)
        .Add(u_grf * inv, 2);
  }
  t.Print(std::string(kind == DatasetKind::kTimik ? "Fig 14" : "Fig 15") +
          ": ST utility (0 if infeasible), " + DatasetKindName(kind) +
          " n=15, d_tel=0.5");
}

void PrintTables() {
  PrintDataset(DatasetKind::kTimik);
  PrintDataset(DatasetKind::kEpinions);
}

void BM_StEvaluation(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 15;
  params.num_items = 60;
  params.num_slots = 5;
  params.seed = 150;
  auto inst = GenerateDataset(params);
  StOptions st;
  st.size_cap = 5;
  auto avg = RunAvgSt(*inst, st);
  EvaluateOptions opt;
  opt.d_tel = 0.5;
  for (auto _ : state) {
    auto obj = Evaluate(*inst, avg->config, opt);
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_StEvaluation);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
