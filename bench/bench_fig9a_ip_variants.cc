// Figure 9(a): exact-solver configurations under time budgets. The paper
// runs Gurobi's IP-Primal / IP-Dual / IP-Concurrent / IP-DC / IP-Barrier
// with budgets of 200x / 1000x / 5000x the AVG-D runtime; here the
// branch-and-bound node-selection strategies (best-bound / depth-first /
// hybrid) play that role (DESIGN.md documents the substitution).
//
// Expected shape: no exact configuration beats AVG-D's solution within any
// of the budgets (values <= 1.0 in the normalized table, reaching 1.0 only
// when the budget suffices to match it).

#include "bench_util.h"

#include "lp/branch_and_bound.h"
#include "util/logging.h"

namespace savg {
namespace {

void PrintTables() {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 9;
  params.num_items = 14;
  params.num_slots = 4;
  params.seed = 9;
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }
  // AVG-D reference (time + value).
  Timer timer;
  auto frac = SolveRelaxation(*inst);
  auto avg_d = RunAvgD(*inst, *frac);
  const double avg_d_seconds = std::max(1e-4, timer.ElapsedSeconds());
  const double avg_d_value = Evaluate(*inst, avg_d->config).ScaledTotal();
  std::printf("AVG-D: value %.3f in %.4fs\n", avg_d_value, avg_d_seconds);

  struct Variant {
    const char* name;
    NodeSelection strategy;
  };
  const Variant variants[] = {
      {"IP-BestBound", NodeSelection::kBestBound},
      {"IP-DepthFirst", NodeSelection::kDepthFirst},
      {"IP-Hybrid", NodeSelection::kHybrid},
  };
  Table t({"variant", "200x", "1000x", "5000x"});
  for (const Variant& variant : variants) {
    t.NewRow().Add(variant.name);
    for (double budget : {200.0, 1000.0, 5000.0}) {
      RunnerConfig config;
      config.ip.mip.node_selection = variant.strategy;
      config.ip.mip.time_limit_seconds = budget * avg_d_seconds;
      config.ip.seed_with_avg_d = false;  // measure the tree search itself
      auto run = RunAlgorithm(*inst, Algo::kIp, config);
      t.Add(run.ok() ? benchutil::Ratio(run->scaled_total, avg_d_value)
                     : "-");
    }
  }
  t.Print(
      "Fig 9(a): exact-solver value normalized by AVG-D, per time budget");
  std::printf(
      "('-' = the tree search produced no incumbent within the budget; no "
      "variant exceeds 1.000.)\n");
}

void BM_MipStrategies(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 6;
  params.num_items = 10;
  params.num_slots = 3;
  params.seed = 9;
  auto inst = GenerateDataset(params);
  RunnerConfig config;
  config.ip.mip.node_selection =
      static_cast<NodeSelection>(state.range(0));
  config.ip.mip.time_limit_seconds = 10.0;
  for (auto _ : state) {
    auto run = RunAlgorithm(*inst, Algo::kIp, config);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_MipStrategies)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
