// Figure 11 case study: a 2-hop ego network around a user with a unique
// preference profile (no friend shares her tastes). Static-partition
// methods (SDP by topology, GRF by taste) either drag her into groups she
// dislikes or leave her alone; AVG's per-slot flexible subgroups serve both
// her individual picks and her social opportunities.
//
// Output: the ego user's regret ratio under AVG / SDP / GRF, plus her slot
// assignments with the co-viewers at each slot.

#include "bench_util.h"

#include <cmath>

#include "baselines/grf.h"
#include "baselines/sdp.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "metrics/metrics.h"

namespace savg {
namespace {

/// Picks the user the static-partition baselines serve worst: the one whose
/// smaller of (SDP regret, GRF regret) is largest among users with >= 2
/// friends. This is the paper's case-study framing — a user whose unique
/// profile makes any single fixed partition a bad fit.
UserId WorstServedByStaticPartitions(const SvgicInstance& inst,
                                     const std::vector<double>& sdp_regret,
                                     const std::vector<double>& grf_regret) {
  UserId best = 0;
  double best_score = -1.0;
  for (UserId u = 0; u < inst.num_users(); ++u) {
    if (inst.PairsOfUser(u).size() < 2) continue;
    const double score = std::min(sdp_regret[u], grf_regret[u]);
    if (score > best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

void PrintTables() {
  // A Yelp-like group, then restrict to a 2-hop ego network of the most
  // unique-tasted user.
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 30;
  params.num_items = 120;
  params.num_slots = 5;
  params.seed = 12;
  auto full = GenerateDataset(params);
  if (!full.ok()) {
    std::cerr << full.status() << "\n";
    return;
  }
  auto frac = SolveRelaxation(*full);
  auto avg = RunAvgD(*full, *frac);
  auto sdp = RunSdp(*full);
  auto grf = RunGrf(*full);
  if (!avg.ok() || !sdp.ok() || !grf.ok()) return;
  const UserId pivot = WorstServedByStaticPartitions(
      *full, RegretRatios(*full, *sdp), RegretRatios(*full, *grf));
  auto ego_users = full->graph().EgoNetwork(pivot, 2);
  std::printf("Ego network of user %d: %zu users\n", pivot,
              ego_users.size());

  Table t({"method", "regret of ego user", "mean regret (all)"});
  auto report = [&](const char* name, const Configuration& config) {
    auto regrets = RegretRatios(*full, config);
    double mean = 0;
    for (double r : regrets) mean += r;
    mean /= regrets.size();
    t.NewRow().Add(name).Add(regrets[pivot], 3).Add(mean, 3);
  };
  report("AVG", avg->config);
  report("SDP", *sdp);
  report("GRF", *grf);
  t.Print("Fig 11: regret of the unique-profile ego user");

  // Show the ego user's AVG slots and co-viewers among friends.
  Table slots({"slot", "item", "co-viewing friends"});
  for (SlotId s = 0; s < full->num_slots(); ++s) {
    const ItemId c = avg->config.At(pivot, s);
    std::string friends;
    for (int pi : full->PairsOfUser(pivot)) {
      const FriendPair& pair = full->pairs()[pi];
      const UserId v = pair.u == pivot ? pair.v : pair.u;
      if (avg->config.At(v, s) == c) {
        if (!friends.empty()) friends += ",";
        friends += std::to_string(v);
      }
    }
    slots.NewRow()
        .Add(static_cast<int64_t>(s + 1))
        .Add(std::string("c").append(std::to_string(c)))
        .Add(friends.empty() ? "(alone)" : friends);
  }
  slots.Print("Fig 11: AVG assignment of the ego user");
}

void BM_EgoNetworkExtraction(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 30;
  params.num_items = 120;
  params.num_slots = 5;
  params.seed = 12;
  auto full = GenerateDataset(params);
  for (auto _ : state) {
    auto ego = full->graph().EgoNetwork(0, 2);
    benchmark::DoNotOptimize(ego);
  }
}
BENCHMARK(BM_EgoNetworkExtraction);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
