// Figure 12: sensitivity of AVG-D to the balancing ratio r — (a) utility,
// (b) execution time / CSF iteration count, (c) normalized density,
// (d) Intra%/Inter%.
//
// Expected shapes (Section 6.7): small r resembles the group approach (few
// huge subgroups, high intra, fewer iterations); large r resembles the
// personalized approach (singleton subgroups, social utility -> 0, more
// iterations); near-optimal utility over a wide middle band.

#include "bench_util.h"

#include "core/avg_d.h"
#include "util/logging.h"
#include "core/lp_formulation.h"
#include "metrics/metrics.h"

namespace savg {
namespace {

void PrintTables() {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 40;
  params.num_items = 500;
  params.num_slots = 10;
  params.seed = 13;
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }
  RelaxationOptions relax;
  relax.method = RelaxationMethod::kSubgradient;
  auto frac = SolveRelaxation(*inst, relax);
  if (!frac.ok()) {
    std::cerr << frac.status() << "\n";
    return;
  }
  std::printf("LP bound: %.2f\n", frac->lp_objective);

  Table t({"r", "utility", "social part", "time (s)", "CSF iters",
           "Intra%", "norm.density"});
  for (double r : {0.05, 0.1, 0.25, 0.5, 0.7, 1.0, 1.5, 2.0}) {
    AvgDOptions opt;
    opt.r = r;
    Timer timer;
    auto result = RunAvgD(*inst, *frac, opt);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) continue;
    const ObjectiveBreakdown obj = Evaluate(*inst, result->config);
    const SubgroupMetrics sm = ComputeSubgroupMetrics(*inst, result->config);
    t.NewRow()
        .Add(FormatDouble(r, 2))
        .Add(obj.ScaledTotal(), 2)
        .Add(obj.social_direct, 2)
        .Add(seconds, 4)
        .Add(result->csf_iterations)
        .Add(FormatPercent(sm.intra_fraction))
        .Add(sm.normalized_density, 2);
  }
  t.Print("Fig 12: AVG-D sensitivity to r (Timik, n=40, m=500, k=10)");
}

void BM_AvgDByR(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 40;
  params.num_items = 500;
  params.num_slots = 10;
  params.seed = 13;
  auto inst = GenerateDataset(params);
  RelaxationOptions relax;
  relax.method = RelaxationMethod::kSubgradient;
  auto frac = SolveRelaxation(*inst, relax);
  AvgDOptions opt;
  opt.r = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto result = RunAvgD(*inst, *frac, opt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AvgDByR)->Arg(5)->Arg(25)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
