// LP engine microbench: the three hot configurations of the simplex on
// fig8-scale compact LPs (Yelp n=40, k=10 — the m=10000 point is the
// largest bench_fig8_scalability instance).
//
//  1. Cold pricing — full-Devex (score every column every pivot) vs the
//     candidate-list partial pricing that is now the default. The
//     "pricing share" column is LpStats::pricing_seconds over the whole
//     solve: the quantity the ROADMAP said should decide the partial-
//     pricing question, reported per mode in the --json= artifact.
//  2. Warm repair — branch-and-bound-child one-bound changes and
//     serving-style item bans re-solved from the parent-optimal basis
//     with warm_start_mode kDual vs kPrimal. Both states are
//     dual-feasible, so the dual simplex repairs them in a handful of
//     pivots where composite phase 1 re-walks the feasibility staircase.
//     The paired "(dual-warm)" / "(primal-warm)" pivot metrics feed the
//     machine-independent CI gate (tools/perf_compare.py --suffixes,
//     dual <= 0.75x primal), pivot counts being machine-speed-free.
//
// Objectives are cross-checked between every pair of paths; a mismatch
// prints loudly (the equivalence tests in lp_test.cc enforce it).

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "core/lp_formulation.h"

namespace savg {
namespace {

DatasetParams EngineParams(int m) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 40;
  params.num_items = m;
  params.num_slots = 10;
  params.seed = 8;
  return params;
}

const char* PricingName(PricingMode mode) {
  return mode == PricingMode::kPartial ? "partial" : "full devex";
}

struct ColdRun {
  LpSolution sol;
  bool ok = false;
};

ColdRun SolveCold(const LpModel& lp, PricingMode mode) {
  SimplexOptions options;
  options.pricing = mode;
  ColdRun run;
  auto sol = SolveLp(lp, options);
  if (!sol.ok()) {
    std::cerr << "cold solve (" << PricingName(mode)
              << ") failed: " << sol.status() << "\n";
    return run;
  }
  run.sol = std::move(sol).value();
  run.ok = true;
  return run;
}

/// Section 1: cold full-Devex vs partial pricing per compact-LP size.
/// Returns the m=`reuse_m` partial solution for the warm-repair section.
ColdRun PrintPricingComparison(int reuse_m, LpModel* reuse_lp) {
  Table t({"m", "mode", "pivots", "solve (s)", "pricing (s)",
           "pricing share", "cand hits", "full scans"});
  ColdRun reuse;
  for (int m : {2000, 10000}) {
    auto inst = GenerateDataset(EngineParams(m));
    if (!inst.ok()) {
      std::cerr << inst.status() << "\n";
      continue;
    }
    CompactLpMap map;
    auto lp = BuildCompactLp(*inst, &map);
    if (!lp.ok()) {
      std::cerr << lp.status() << "\n";
      continue;
    }
    double objectives[2] = {0.0, 0.0};
    int mode_index = 0;
    for (PricingMode mode : {PricingMode::kFullDevex, PricingMode::kPartial}) {
      ColdRun run = SolveCold(*lp, mode);
      if (!run.ok) continue;
      const LpSolution& sol = run.sol;
      const double share =
          sol.solve_seconds > 0 ? sol.stats.pricing_seconds / sol.solve_seconds
                                : 0.0;
      objectives[mode_index++] = sol.objective;
      t.NewRow()
          .Add(static_cast<int64_t>(m))
          .Add(PricingName(mode))
          .Add(static_cast<int64_t>(sol.iterations))
          .Add(FormatDouble(sol.solve_seconds, 3))
          .Add(FormatDouble(sol.stats.pricing_seconds, 3))
          .Add(FormatPercent(share))
          .Add(sol.stats.candidate_hits)
          .Add(sol.stats.full_pricing_scans);
      const std::string prefix =
          "lp engine | m=" + std::to_string(m) + " cold ";
      benchutil::RecordMetric(prefix + "solve seconds - " + PricingName(mode),
                              sol.solve_seconds);
      benchutil::RecordMetric(
          prefix + "pricing seconds - " + PricingName(mode),
          sol.stats.pricing_seconds);
      benchutil::RecordMetric(prefix + "pricing share - " + PricingName(mode),
                              share);
      if (m == reuse_m && mode == PricingMode::kPartial) {
        reuse = std::move(run);
        *reuse_lp = *lp;
      }
    }
    if (std::abs(objectives[0] - objectives[1]) >
        1e-6 * std::max(1.0, std::abs(objectives[0]))) {
      std::cerr << "OBJECTIVE MISMATCH at m=" << m << ": full devex "
                << objectives[0] << " vs partial " << objectives[1] << "\n";
    }
  }
  t.Print("LP engine: cold compact-LP solves, full-Devex vs partial "
          "pricing (Yelp n=40, k=10)");
  return reuse;
}

struct RepairTotals {
  int64_t pivots = 0;
  int64_t dual_pivots = 0;
  double seconds = 0.0;
  int resolves = 0;
};

/// Re-solves `child` from `parent_basis` under the given warm-start mode,
/// accumulating into `totals`. Returns the objective (NaN on failure).
double RepairChild(const LpModel& child, const LpBasis& parent_basis,
                   WarmStartMode mode, RepairTotals* totals) {
  SimplexOptions options;
  options.warm_start_mode = mode;
  auto sol = SolveLp(child, options, &parent_basis);
  if (!sol.ok()) return std::nan("");
  totals->pivots += sol->iterations;
  totals->dual_pivots += sol->stats.dual_pivots;
  totals->seconds += sol->solve_seconds;
  ++totals->resolves;
  return sol->objective;
}

/// Section 2: dual vs primal repair of one-bound-change children. The
/// children come in two flavors: branch-and-bound branches (x_u^c <= 0 or
/// >= 1 on a fractional variable) and serving-style bans (every x column
/// of one user's displayed-ish items forced to 0).
void PrintWarmRepair(const ColdRun& parent, const LpModel& lp) {
  if (!parent.ok) return;
  // Fractional variables of the parent optimum: the B&B branching set.
  std::vector<int> fractional;
  for (int j = 0;
       j < lp.num_vars() && static_cast<int>(fractional.size()) < 12; ++j) {
    if (parent.sol.x[j] > 0.1 && parent.sol.x[j] < 0.9 &&
        lp.upper(j) <= 1.0) {
      fractional.push_back(j);
    }
  }
  Table t({"children", "mode", "resolves", "pivots", "dual pivots",
           "pivots/resolve"});
  struct Flavor {
    const char* label;
    const char* metric;
  };
  for (const Flavor& flavor :
       {Flavor{"b&b child (one bound)", "b&b child resolve pivots"},
        Flavor{"serving ban (user's columns to 0)",
               "serving ban resolve pivots"}}) {
    const bool bans = flavor.metric[0] == 's';
    RepairTotals dual_totals, primal_totals;
    LpModel child = lp;
    for (size_t i = 0; i < fractional.size(); ++i) {
      // Build the child: one tightened bound (B&B) or one user's columns
      // zeroed (ban) — both leave the parent basis dual-feasible.
      child = lp;
      if (bans) {
        const int banned = fractional[i];
        child.SetBounds(banned, 0.0, 0.0);
        // Ban two neighbors in the same user's column block as well, the
        // "item pulled from a storefront" shape.
        if (banned + 1 < lp.num_vars() && lp.upper(banned + 1) <= 1.0) {
          child.SetBounds(banned + 1, 0.0, 0.0);
        }
      } else if (i % 2 == 0) {
        child.SetBounds(fractional[i], lp.lower(fractional[i]), 0.0);
      } else {
        child.SetBounds(fractional[i], 1.0, lp.upper(fractional[i]));
      }
      const double dual_obj =
          RepairChild(child, parent.sol.basis, WarmStartMode::kDual,
                      &dual_totals);
      const double primal_obj =
          RepairChild(child, parent.sol.basis, WarmStartMode::kPrimal,
                      &primal_totals);
      if (std::isfinite(dual_obj) != std::isfinite(primal_obj) ||
          (std::isfinite(dual_obj) &&
           std::abs(dual_obj - primal_obj) >
               1e-6 * std::max(1.0, std::abs(primal_obj)))) {
        std::cerr << "OBJECTIVE MISMATCH on child " << i << " ("
                  << flavor.label << "): dual " << dual_obj << " vs primal "
                  << primal_obj << "\n";
      }
    }
    for (const bool is_dual : {true, false}) {
      const RepairTotals& totals = is_dual ? dual_totals : primal_totals;
      t.NewRow()
          .Add(flavor.label)
          .Add(is_dual ? "dual-warm" : "primal-warm")
          .Add(static_cast<int64_t>(totals.resolves))
          .Add(totals.pivots)
          .Add(totals.dual_pivots)
          .Add(totals.resolves > 0 ? FormatDouble(static_cast<double>(
                                                      totals.pivots) /
                                                      totals.resolves,
                                                  1)
                                   : std::string("-"));
      benchutil::RecordMetric(
          std::string("lp engine | ") + flavor.metric +
              (is_dual ? " (dual-warm)" : " (primal-warm)"),
          static_cast<double>(totals.pivots));
    }
  }
  t.Print("LP engine: warm-basis repair after a bound change, dual vs "
          "composite-phase-1 primal (m=2000 compact LP)");
}

void PrintTables() {
  LpModel reuse_lp;
  ColdRun parent = PrintPricingComparison(2000, &reuse_lp);
  PrintWarmRepair(parent, reuse_lp);
}

void BM_ColdCompactSolve(benchmark::State& state) {
  auto inst = GenerateDataset(EngineParams(static_cast<int>(state.range(0))));
  CompactLpMap map;
  auto lp = BuildCompactLp(*inst, &map);
  SimplexOptions options;
  options.pricing =
      state.range(1) != 0 ? PricingMode::kPartial : PricingMode::kFullDevex;
  for (auto _ : state) {
    auto sol = SolveLp(*lp, options);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_ColdCompactSolve)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_DualChildResolve(benchmark::State& state) {
  auto inst = GenerateDataset(EngineParams(2000));
  CompactLpMap map;
  auto lp = BuildCompactLp(*inst, &map);
  auto parent = SolveLp(*lp);
  int branch = 0;
  for (int j = 0; j < lp->num_vars(); ++j) {
    if (parent->x[j] > 0.1 && parent->x[j] < 0.9 && lp->upper(j) <= 1.0) {
      branch = j;
      break;
    }
  }
  LpModel child = *lp;
  child.SetBounds(branch, lp->lower(branch), 0.0);
  SimplexOptions options;
  options.warm_start_mode = WarmStartMode::kDual;
  for (auto _ : state) {
    auto sol = SolveLp(child, options, &parent->basis);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_DualChildResolve)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
