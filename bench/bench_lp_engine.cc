// LP engine microbench: the hot configurations of the simplex on
// fig8-scale compact LPs (Yelp n=40, k=10 — the m=10000 point is the
// largest bench_fig8_scalability instance).
//
//  1. Cold pricing — full-Devex (score every column every pivot) vs the
//     candidate-list partial pricing that is now the default. The
//     "pricing share" column is LpStats::pricing_seconds over the whole
//     solve: the quantity the ROADMAP said should decide the partial-
//     pricing question, reported per mode in the --json= artifact.
//  2. Presolve — the same cold solves with lp/presolve.h on vs off. The
//     compact LP's per-user social-free columns form large parallel
//     groups, so the parallel-column reduction removes most of them
//     (over half the columns at m=10000); the postsolve re-derives the
//     exact primal/dual/basis, so the objective is cross-checked
//     bit-tight against the unreduced solve.
//  3. Warm repair — branch-and-bound-child one-bound changes and
//     serving-style item bans re-solved from the parent-optimal basis
//     with warm_start_mode kDual vs kPrimal. Both states are
//     dual-feasible, so the dual simplex repairs them in a handful of
//     pivots where composite phase 1 re-walks the feasibility staircase.
//     The paired "(dual-warm)" / "(primal-warm)" pivot metrics feed the
//     machine-independent CI gate (tools/perf_compare.py --suffixes,
//     dual <= 0.75x primal), pivot counts being machine-speed-free.
//  4. Dual row pricing — the same dual repairs under ban *waves* (eight
//     items pulled at once, the storefront-refresh shape) with the
//     leaving row picked by dual Devex vs plain max-violation. Devex
//     weighs each violation by the steepness of the dual edge removing
//     it, so multi-bound repairs take fewer pivots; the paired
//     "(devex-rows)" / "(maxviol-rows)" metrics feed a second pivot-count
//     CI gate (devex <= 0.85x max-violation).
//  5. Eta-file management — a long serving-style mutation stream
//     (>= 2000 warm resolves with periodic cold re-solves) under the
//     adaptive refactorization policy vs a fixed interval vs no
//     refactorization at all. The adaptive policy's work counters keep
//     the eta chain — and with it the ftran/btran cost per pivot —
//     bounded, where the unmanaged chain grows with the solve length.
//
// Objectives are cross-checked between every pair of paths; a mismatch
// prints loudly (the equivalence tests in lp_test.cc enforce it).

#include <cmath>
#include <deque>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/lp_formulation.h"
#include "lp/presolve.h"
#include "util/random.h"

namespace savg {
namespace {

DatasetParams EngineParams(int m) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 40;
  params.num_items = m;
  params.num_slots = 10;
  params.seed = 8;
  return params;
}

/// The two compact-LP sizes every section runs on.
constexpr int kSmallM = 2000;
constexpr int kLargeM = 10000;

Result<LpModel> BuildEngineLp(int m) {
  auto inst = GenerateDataset(EngineParams(m));
  if (!inst.ok()) return inst.status();
  CompactLpMap map;
  return BuildCompactLp(*inst, &map);
}

const char* PricingName(PricingMode mode) {
  return mode == PricingMode::kPartial ? "partial" : "full devex";
}

struct ColdRun {
  LpSolution sol;
  bool ok = false;
};

ColdRun SolveCold(const LpModel& lp, PricingMode mode) {
  SimplexOptions options;
  options.pricing = mode;
  ColdRun run;
  auto sol = SolveLp(lp, options);
  if (!sol.ok()) {
    std::cerr << "cold solve (" << PricingName(mode)
              << ") failed: " << sol.status() << "\n";
    return run;
  }
  run.sol = std::move(sol).value();
  run.ok = true;
  return run;
}

bool ObjectivesMatch(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max(1.0, std::abs(a));
}

/// Section 1: cold full-Devex vs partial pricing per compact-LP size.
/// Returns the per-m partial-pricing solutions (reused by the other
/// sections as the no-presolve reference and the warm-repair parent).
std::map<int, ColdRun> PrintPricingComparison(
    const std::map<int, LpModel>& lps) {
  Table t({"m", "mode", "pivots", "solve (s)", "pricing (s)",
           "pricing share", "cand hits", "full scans"});
  std::map<int, ColdRun> partial_runs;
  for (const auto& [m, lp] : lps) {
    double objectives[2] = {0.0, 0.0};
    int mode_index = 0;
    for (PricingMode mode : {PricingMode::kFullDevex, PricingMode::kPartial}) {
      ColdRun run = SolveCold(lp, mode);
      if (!run.ok) continue;
      const LpSolution& sol = run.sol;
      const double share =
          sol.solve_seconds > 0 ? sol.stats.pricing_seconds / sol.solve_seconds
                                : 0.0;
      objectives[mode_index++] = sol.objective;
      t.NewRow()
          .Add(static_cast<int64_t>(m))
          .Add(PricingName(mode))
          .Add(static_cast<int64_t>(sol.iterations))
          .Add(FormatDouble(sol.solve_seconds, 3))
          .Add(FormatDouble(sol.stats.pricing_seconds, 3))
          .Add(FormatPercent(share))
          .Add(sol.stats.candidate_hits)
          .Add(sol.stats.full_pricing_scans);
      const std::string prefix =
          "lp engine | m=" + std::to_string(m) + " cold ";
      benchutil::RecordMetric(prefix + "solve seconds - " + PricingName(mode),
                              sol.solve_seconds);
      benchutil::RecordMetric(
          prefix + "pricing seconds - " + PricingName(mode),
          sol.stats.pricing_seconds);
      benchutil::RecordMetric(prefix + "pricing share - " + PricingName(mode),
                              share);
      if (mode == PricingMode::kPartial) partial_runs[m] = std::move(run);
    }
    if (!ObjectivesMatch(objectives[0], objectives[1])) {
      std::cerr << "OBJECTIVE MISMATCH at m=" << m << ": full devex "
                << objectives[0] << " vs partial " << objectives[1] << "\n";
    }
  }
  t.Print("LP engine: cold compact-LP solves, full-Devex vs partial "
          "pricing (Yelp n=40, k=10)");
  return partial_runs;
}

/// Section 2: cold solves with the presolve pipeline on vs off. The "off"
/// rows reuse section 1's partial-pricing solves; the "on" rows run
/// SolveLp with SimplexOptions::presolve, whose postsolve maps the reduced
/// optimum back exactly (objective cross-checked).
void PrintPresolve(const std::map<int, LpModel>& lps,
                   const std::map<int, ColdRun>& cold_runs) {
  Table t({"m", "presolve", "cols", "cols removed", "presolve (s)", "pivots",
           "solve (s)"});
  for (const auto& [m, lp] : lps) {
    auto cold_it = cold_runs.find(m);
    if (cold_it == cold_runs.end() || !cold_it->second.ok) continue;
    const LpSolution& off = cold_it->second.sol;
    SimplexOptions options;
    options.presolve = true;
    auto on = SolveLp(lp, options);
    if (!on.ok()) {
      std::cerr << "presolved cold solve failed at m=" << m << ": "
                << on.status() << "\n";
      continue;
    }
    t.NewRow()
        .Add(static_cast<int64_t>(m))
        .Add("off")
        .Add(static_cast<int64_t>(lp.num_vars()))
        .Add(static_cast<int64_t>(0))
        .Add("-")
        .Add(static_cast<int64_t>(off.iterations))
        .Add(FormatDouble(off.solve_seconds, 3));
    t.NewRow()
        .Add(static_cast<int64_t>(m))
        .Add("on")
        .Add(static_cast<int64_t>(lp.num_vars() -
                                  on->stats.presolve_cols_removed))
        .Add(on->stats.presolve_cols_removed)
        .Add(FormatDouble(on->stats.presolve_seconds, 4))
        .Add(static_cast<int64_t>(on->iterations))
        .Add(FormatDouble(on->solve_seconds, 3));
    if (!ObjectivesMatch(off.objective, on->objective)) {
      std::cerr << "OBJECTIVE MISMATCH at m=" << m << ": no presolve "
                << off.objective << " vs presolve " << on->objective << "\n";
    }
    const std::string prefix = "lp engine | m=" + std::to_string(m) + " ";
    benchutil::RecordMetric(prefix + "presolve cold solve seconds",
                            on->solve_seconds);
    benchutil::RecordMetric(prefix + "presolve seconds",
                            on->stats.presolve_seconds);
    benchutil::RecordMetric(
        prefix + "presolve cols removed",
        static_cast<double>(on->stats.presolve_cols_removed));
  }
  t.Print("LP engine: presolve pipeline on cold compact-LP solves "
          "(parallel social-free columns dominate the reduction)");
}

struct RepairTotals {
  int64_t pivots = 0;
  int64_t dual_pivots = 0;
  double seconds = 0.0;
  int resolves = 0;
};

/// Re-solves `child` from `parent_basis` under the given warm-start mode,
/// accumulating into `totals`. Returns the objective (NaN on failure).
double RepairChild(const LpModel& child, const LpBasis& parent_basis,
                   WarmStartMode mode, RepairTotals* totals,
                   DualRowPricing row_pricing = DualRowPricing::kDevex) {
  SimplexOptions options;
  options.warm_start_mode = mode;
  options.dual_row_pricing = row_pricing;
  auto sol = SolveLp(child, options, &parent_basis);
  if (!sol.ok()) return std::nan("");
  totals->pivots += sol->iterations;
  totals->dual_pivots += sol->stats.dual_pivots;
  totals->seconds += sol->solve_seconds;
  ++totals->resolves;
  return sol->objective;
}

/// Section 3: dual vs primal repair of one-bound-change children. The
/// children come in two flavors: branch-and-bound branches (x_u^c <= 0 or
/// >= 1 on a fractional variable) and serving-style bans (every x column
/// of one user's displayed-ish items forced to 0).
void PrintWarmRepair(const ColdRun& parent, const LpModel& lp) {
  if (!parent.ok) return;
  // Fractional variables of the parent optimum: the B&B branching set.
  std::vector<int> fractional;
  for (int j = 0;
       j < lp.num_vars() && static_cast<int>(fractional.size()) < 12; ++j) {
    if (parent.sol.x[j] > 0.1 && parent.sol.x[j] < 0.9 &&
        lp.upper(j) <= 1.0) {
      fractional.push_back(j);
    }
  }
  Table t({"children", "mode", "resolves", "pivots", "dual pivots",
           "pivots/resolve"});
  struct Flavor {
    const char* label;
    const char* metric;
  };
  for (const Flavor& flavor :
       {Flavor{"b&b child (one bound)", "b&b child resolve pivots"},
        Flavor{"serving ban (user's columns to 0)",
               "serving ban resolve pivots"}}) {
    const bool bans = flavor.metric[0] == 's';
    RepairTotals dual_totals, primal_totals;
    LpModel child = lp;
    for (size_t i = 0; i < fractional.size(); ++i) {
      // Build the child: one tightened bound (B&B) or one user's columns
      // zeroed (ban) — both leave the parent basis dual-feasible.
      child = lp;
      if (bans) {
        const int banned = fractional[i];
        child.SetBounds(banned, 0.0, 0.0);
        // Ban two neighbors in the same user's column block as well, the
        // "item pulled from a storefront" shape.
        if (banned + 1 < lp.num_vars() && lp.upper(banned + 1) <= 1.0) {
          child.SetBounds(banned + 1, 0.0, 0.0);
        }
      } else if (i % 2 == 0) {
        child.SetBounds(fractional[i], lp.lower(fractional[i]), 0.0);
      } else {
        child.SetBounds(fractional[i], 1.0, lp.upper(fractional[i]));
      }
      const double dual_obj =
          RepairChild(child, parent.sol.basis, WarmStartMode::kDual,
                      &dual_totals);
      const double primal_obj =
          RepairChild(child, parent.sol.basis, WarmStartMode::kPrimal,
                      &primal_totals);
      if (std::isfinite(dual_obj) != std::isfinite(primal_obj) ||
          (std::isfinite(dual_obj) &&
           !ObjectivesMatch(dual_obj, primal_obj))) {
        std::cerr << "OBJECTIVE MISMATCH on child " << i << " ("
                  << flavor.label << "): dual " << dual_obj << " vs primal "
                  << primal_obj << "\n";
      }
    }
    for (const bool is_dual : {true, false}) {
      const RepairTotals& totals = is_dual ? dual_totals : primal_totals;
      t.NewRow()
          .Add(flavor.label)
          .Add(is_dual ? "dual-warm" : "primal-warm")
          .Add(static_cast<int64_t>(totals.resolves))
          .Add(totals.pivots)
          .Add(totals.dual_pivots)
          .Add(totals.resolves > 0 ? FormatDouble(static_cast<double>(
                                                      totals.pivots) /
                                                      totals.resolves,
                                                  1)
                                   : std::string("-"));
      benchutil::RecordMetric(
          std::string("lp engine | ") + flavor.metric +
              (is_dual ? " (dual-warm)" : " (primal-warm)"),
          static_cast<double>(totals.pivots));
    }
  }
  t.Print("LP engine: warm-basis repair after a bound change, dual vs "
          "composite-phase-1 primal (m=2000 compact LP)");
}

/// Section 4: dual-simplex leaving-row rule under ban waves. Each wave
/// pulls eight well-displayed items at once (x columns with parent value
/// > 0.5 forced to 0) and the dual simplex repairs the parent basis —
/// the many-violation state where the row rule matters. Dual Devex and
/// max-violation must reach the same optimum; Devex should get there in
/// fewer pivots (the "(devex-rows)" / "(maxviol-rows)" CI gate).
void PrintDualRowPricing(const ColdRun& parent, const LpModel& lp) {
  if (!parent.ok) return;
  constexpr int kWaves = 12;
  constexpr int kBansPerWave = 8;
  // Eligible bans: structural columns the parent optimum actually serves.
  std::vector<int> served;
  for (int j = 0; j < lp.num_vars(); ++j) {
    if (parent.sol.x[j] > 0.5 && lp.lower(j) == 0.0 && lp.upper(j) <= 1.0) {
      served.push_back(j);
    }
  }
  struct ModeTotals {
    RepairTotals totals;
    std::vector<double> objectives;
  };
  ModeTotals devex, maxviol;
  Rng rng(99);
  for (int wave = 0; wave < kWaves; ++wave) {
    rng.Shuffle(&served);
    LpModel child = lp;
    for (int b = 0; b < kBansPerWave && b < static_cast<int>(served.size());
         ++b) {
      child.SetBounds(served[b], 0.0, 0.0);
    }
    devex.objectives.push_back(RepairChild(child, parent.sol.basis,
                                           WarmStartMode::kDual,
                                           &devex.totals,
                                           DualRowPricing::kDevex));
    maxviol.objectives.push_back(RepairChild(child, parent.sol.basis,
                                             WarmStartMode::kDual,
                                             &maxviol.totals,
                                             DualRowPricing::kMaxViolation));
    const double a = devex.objectives.back();
    const double b = maxviol.objectives.back();
    if (std::isfinite(a) != std::isfinite(b) ||
        (std::isfinite(a) && !ObjectivesMatch(a, b))) {
      std::cerr << "OBJECTIVE MISMATCH on ban wave " << wave
                << ": devex rows " << a << " vs max violation " << b << "\n";
    }
  }
  Table t({"row rule", "waves", "bans/wave", "repaired", "pivots",
           "dual pivots", "pivots/wave", "seconds"});
  struct Row {
    const char* label;
    const char* suffix;
    const ModeTotals* mode;
  };
  for (const Row& row : {Row{"dual devex", " (devex-rows)", &devex},
                         Row{"max violation", " (maxviol-rows)", &maxviol}}) {
    const RepairTotals& totals = row.mode->totals;
    t.NewRow()
        .Add(row.label)
        .Add(static_cast<int64_t>(kWaves))
        .Add(static_cast<int64_t>(kBansPerWave))
        .Add(static_cast<int64_t>(totals.resolves))
        .Add(totals.pivots)
        .Add(totals.dual_pivots)
        .Add(totals.resolves > 0
                 ? FormatDouble(
                       static_cast<double>(totals.pivots) / totals.resolves, 1)
                 : std::string("-"))
        .Add(FormatDouble(totals.seconds, 3));
    benchutil::RecordMetric(
        std::string("lp engine | ban-wave repair pivots") + row.suffix,
        static_cast<double>(totals.pivots));
    benchutil::RecordMetric(
        std::string("lp engine | ban-wave repair seconds") + row.suffix,
        totals.seconds);
  }
  t.Print("LP engine: dual-simplex row pricing under 8-item ban waves, "
          "dual Devex vs max violation (m=2000 compact LP)");
}

/// Section 5: eta-file management over a serving-style stream. The stream
/// bans a random served item per step (restoring the oldest ban past a
/// window, so the LP keeps its shape) and warm-resolves from the previous
/// basis; every 250th resolve is forced cold, the serving fallback where
/// a solve runs thousands of pivots and an unmanaged eta chain hurts.
/// Policies compared: adaptive (the default triggers), fixed interval 256
/// (the PR 2-5 behavior), and unmanaged (interval 2^30: the eta chain only
/// dies at the start-of-solve factorization). Kernel us/pivot is the
/// bounded-vs-growing observable.
void PrintServingStream(const LpModel& lp) {
  constexpr int kResolves = 2000;
  constexpr int kColdEvery = 250;
  constexpr int kBanWindow = 40;
  std::vector<int> bannable;
  for (int j = 0; j < lp.num_vars(); ++j) {
    if (lp.lower(j) == 0.0 && lp.upper(j) == 1.0) bannable.push_back(j);
  }
  struct Policy {
    const char* label;
    RefactorPolicy policy;
    int interval;
  };
  const Policy policies[] = {
      {"adaptive", RefactorPolicy::kAdaptive, 256},
      {"fixed-256", RefactorPolicy::kFixedInterval, 256},
      {"unmanaged", RefactorPolicy::kFixedInterval, 1 << 30},
  };
  Table t({"policy", "resolves", "pivots", "refactors", "max eta chain",
           "kernel (s)", "kernel us/pivot", "total (s)"});
  std::vector<double> reference_objectives;
  for (const Policy& policy : policies) {
    SimplexOptions options;
    options.refactor_policy = policy.policy;
    options.refactor_interval = policy.interval;
    Rng rng(7);  // same seed per policy: identical mutation streams
    LpModel work = lp;
    std::deque<int> banned;
    LpBasis basis;
    bool have_basis = false;
    int64_t pivots = 0, refactors = 0, max_eta = 0;
    int resolves = 0, mismatches = 0;
    double kernel_seconds = 0.0;
    Timer stream_timer;
    for (int step = 0; step < kResolves; ++step) {
      const int j = bannable[rng.UniformInt(
          static_cast<uint64_t>(bannable.size()))];
      work.SetBounds(j, 0.0, 0.0);
      banned.push_back(j);
      if (static_cast<int>(banned.size()) > kBanWindow) {
        work.SetBounds(banned.front(), 0.0, 1.0);
        banned.pop_front();
      }
      const bool cold = step % kColdEvery == 0;
      auto sol = SolveLp(work, options,
                         have_basis && !cold ? &basis : nullptr);
      if (!sol.ok()) {
        have_basis = false;
        continue;
      }
      basis = sol->basis;
      have_basis = true;
      pivots += sol->iterations;
      refactors += sol->stats.refactorizations;
      max_eta = std::max(max_eta, sol->stats.eta_count);
      kernel_seconds += sol->stats.ftran_seconds + sol->stats.btran_seconds;
      ++resolves;
      if (&policy == &policies[0]) {
        reference_objectives.push_back(sol->objective);
      } else if (step < static_cast<int>(reference_objectives.size()) &&
                 !ObjectivesMatch(reference_objectives[step],
                                  sol->objective)) {
        ++mismatches;
      }
    }
    if (mismatches > 0) {
      std::cerr << "OBJECTIVE MISMATCH on serving stream (" << policy.label
                << "): " << mismatches << " steps differ from adaptive\n";
    }
    const double total_seconds = stream_timer.ElapsedSeconds();
    t.NewRow()
        .Add(policy.label)
        .Add(static_cast<int64_t>(resolves))
        .Add(pivots)
        .Add(refactors)
        .Add(max_eta)
        .Add(FormatDouble(kernel_seconds, 3))
        .Add(pivots > 0
                 ? FormatDouble(1e6 * kernel_seconds / pivots, 2)
                 : std::string("-"))
        .Add(FormatDouble(total_seconds, 3));
    const std::string prefix =
        std::string("lp engine | serving stream ");
    benchutil::RecordMetric(prefix + "kernel seconds - " + policy.label,
                            kernel_seconds);
    benchutil::RecordMetric(prefix + "max eta chain - " + policy.label,
                            static_cast<double>(max_eta));
    benchutil::RecordMetric(prefix + "refactorizations - " + policy.label,
                            static_cast<double>(refactors));
    benchutil::RecordMetric(prefix + "total seconds - " + policy.label,
                            total_seconds);
  }
  t.Print("LP engine: eta-file management over a 2000-resolve serving "
          "stream, adaptive vs fixed vs unmanaged refactorization "
          "(m=10000 compact LP, cold resolve every 250)");
}

void PrintTables() {
  std::map<int, LpModel> lps;
  for (int m : {kSmallM, kLargeM}) {
    auto lp = BuildEngineLp(m);
    if (!lp.ok()) {
      std::cerr << "m=" << m << ": " << lp.status() << "\n";
      continue;
    }
    lps.emplace(m, std::move(lp).value());
  }
  std::map<int, ColdRun> partial_runs = PrintPricingComparison(lps);
  PrintPresolve(lps, partial_runs);
  const auto small = partial_runs.find(kSmallM);
  if (small != partial_runs.end() && lps.count(kSmallM) > 0) {
    PrintWarmRepair(small->second, lps.at(kSmallM));
    PrintDualRowPricing(small->second, lps.at(kSmallM));
  }
  if (lps.count(kLargeM) > 0) PrintServingStream(lps.at(kLargeM));
}

void BM_ColdCompactSolve(benchmark::State& state) {
  auto inst = GenerateDataset(EngineParams(static_cast<int>(state.range(0))));
  CompactLpMap map;
  auto lp = BuildCompactLp(*inst, &map);
  SimplexOptions options;
  options.pricing =
      state.range(1) != 0 ? PricingMode::kPartial : PricingMode::kFullDevex;
  for (auto _ : state) {
    auto sol = SolveLp(*lp, options);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_ColdCompactSolve)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_PresolvedColdSolve(benchmark::State& state) {
  auto inst = GenerateDataset(EngineParams(10000));
  CompactLpMap map;
  auto lp = BuildCompactLp(*inst, &map);
  SimplexOptions options;
  options.presolve = state.range(0) != 0;
  for (auto _ : state) {
    auto sol = SolveLp(*lp, options);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_PresolvedColdSolve)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DualChildResolve(benchmark::State& state) {
  auto inst = GenerateDataset(EngineParams(2000));
  CompactLpMap map;
  auto lp = BuildCompactLp(*inst, &map);
  auto parent = SolveLp(*lp);
  int branch = 0;
  for (int j = 0; j < lp->num_vars(); ++j) {
    if (parent->x[j] > 0.1 && parent->x[j] < 0.9 && lp->upper(j) <= 1.0) {
      branch = j;
      break;
    }
  }
  LpModel child = *lp;
  child.SetBounds(branch, lp->lower(branch), 0.0);
  SimplexOptions options;
  options.warm_start_mode = WarmStartMode::kDual;
  options.dual_row_pricing = state.range(0) != 0
                                 ? DualRowPricing::kDevex
                                 : DualRowPricing::kMaxViolation;
  for (auto _ : state) {
    auto sol = SolveLp(child, options, &parent->basis);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_DualChildResolve)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
