// Sharded solve scalability: AVG-SHARD (community-partitioned per-shard
// LPs + Lagrangian dual coordination, src/shard/) against monolithic AVG,
// on instances growing well past the single-LP practical limit.
//
// Three sections:
//  1. shard plan quality — balance and cut-weight fraction per dataset
//     (the cut fraction is the social mass the duals must recover);
//  2. batch scale sweep plus the headline large instance (4x the largest
//     bench_fig8_scalability point, n=160 at m=10000): paired
//     "(sharded)" / "(monolithic)" --json metrics feed the
//     machine-speed-independent CI wall-time gate
//     (tools/perf_compare.py --suffixes), and the objective ratio is
//     recorded so artifacts document the quality cost of sharding;
//  3. online serving — identical event streams through a sharded and a
//     monolithic Session: sharded re-solves touch only the dirty shards,
//     and the pivot ratio vs the monolithic warm path lands in the
//     artifact.
//
// --shards= / --shard-gap= override the plan size and the dual gap
// tolerance (bench_util.h).

#include <vector>

#include "bench_util.h"
#include "online/event_log.h"
#include "online/session.h"
#include "shard/shard_plan.h"
#include "shard/shard_solve.h"
#include "util/stats.h"

namespace savg {
namespace {

DatasetParams ScaleParams(int n, int m, int k, uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = 0.5;
  params.seed = seed;
  return params;
}

RunnerConfig ShardConfig() {
  RunnerConfig config;
  benchutil::ApplyShardOverrides(&config.shard);
  return config;
}

/// Runs one registry solver end-to-end; returns (scaled total, seconds)
/// or {-1, -1} on failure.
std::pair<double, double> RunOne(const SvgicInstance& instance,
                                 const std::string& name,
                                 const RunnerConfig& config) {
  auto solver = SolverRegistry::Global().Find(name);
  if (!solver.ok()) return {-1.0, -1.0};
  SolverContext context;
  context.options = &config;
  context.seed = 42;
  Timer timer;
  auto run = (*solver)->Solve(instance, context);
  if (!run.ok()) {
    std::cerr << name << " failed: " << run.status() << "\n";
    return {-1.0, -1.0};
  }
  return {run->scaled_total, timer.ElapsedSeconds()};
}

void PrintPlanQuality() {
  Table t({"dataset", "n", "shards", "sizes", "balance", "cut pairs",
           "cut weight"});
  for (DatasetKind kind :
       {DatasetKind::kYelp, DatasetKind::kTimik, DatasetKind::kEpinions}) {
    for (int n : {40, 160}) {
      DatasetParams p = ScaleParams(n, 100, 5, 19);
      p.kind = kind;
      auto inst = GenerateDataset(p);
      if (!inst.ok()) continue;
      ShardPlanOptions options;
      if (benchutil::ShardsOverride() > 0) {
        options.num_shards = benchutil::ShardsOverride();
      }
      const ShardPlan plan = BuildShardPlan(*inst, options);
      t.NewRow()
          .Add(DatasetKindName(kind))
          .Add(static_cast<int64_t>(n))
          .Add(static_cast<int64_t>(plan.num_shards()))
          .Add("[" + std::to_string(plan.stats.min_size) + ", " +
               std::to_string(plan.stats.max_size) + "]")
          .Add(plan.stats.balance, 2)
          .Add(static_cast<int64_t>(plan.stats.cut_pairs))
          .Add(FormatPercent(plan.stats.cut_weight_fraction));
    }
  }
  t.Print("Shard plans: community partition quality");
}

void PrintScaleSweep() {
  const RunnerConfig config = ShardConfig();
  Table t({"n x m", "AVG", "AVG-SHARD", "AVG (s)", "AVG-SHARD (s)",
           "obj ratio"});
  struct Point {
    int n, m, k;
    bool run_monolithic;
    /// The headline point feeds the paired "(sharded)"/"(monolithic)"
    /// wall-time gate; the others only record plain metrics (on small
    /// instances the monolithic LP is already cheap and the dual rounds'
    /// constant overhead would flap a ratio gate without meaning anything
    /// about scalability).
    bool gate_pair;
  };
  // The largest bench_fig8_scalability instance is n=40 at m=10000
  // (400k utility cells); n=160 at m=10000 is the 4x headline, and the
  // n=640 point runs sharded-only — past the practical monolithic limit.
  const std::vector<Point> points = {
      {40, 2000, 5, true, false},
      {160, 10000, 10, true, true},
      {640, 10000, 10, false, false},
  };
  for (const Point& point : points) {
    auto inst = GenerateDataset(ScaleParams(point.n, point.m, point.k, 8));
    if (!inst.ok()) {
      std::cerr << inst.status() << "\n";
      continue;
    }
    const std::string label =
        std::to_string(point.n) + "x" + std::to_string(point.m);
    const auto sharded = RunOne(*inst, "AVG-SHARD", config);
    std::pair<double, double> mono{-1.0, -1.0};
    if (point.run_monolithic) mono = RunOne(*inst, "AVG", config);
    t.NewRow()
        .Add(label)
        .Add(mono.first, 1)
        .Add(sharded.first, 1)
        .Add(mono.second, 2)
        .Add(sharded.second, 2)
        .Add(benchutil::Ratio(sharded.first, mono.first));
    benchutil::RecordMetric(
        "shard scale | " + label +
            (point.gate_pair ? " (sharded)" : " sharded seconds"),
        sharded.second);
    if (point.run_monolithic) {
      benchutil::RecordMetric(
          "shard scale | " + label +
              (point.gate_pair ? " (monolithic)" : " monolithic seconds"),
          mono.second);
      benchutil::RecordMetric(
          "shard scale | " + label + " objective ratio sharded/monolithic",
          mono.first > 0 ? sharded.first / mono.first : -1.0);
    }
  }
  t.Print("Batch scale: AVG-SHARD vs monolithic AVG (Yelp, lambda=0.5)");
}

/// Polyak vs fixed-diminishing dual steps: identical instance and plan,
/// only the step schedule differs. Rounds-to-gap (and the reached gap)
/// land in the JSON artifact — the ROADMAP PR 4 follow-up asked for this
/// measured before/after.
void PrintDualSchedule() {
  auto inst = GenerateDataset(ScaleParams(120, 400, 5, 31));
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }
  Table t({"schedule", "dual rounds", "gap", "dual bound", "primal",
           "LP (s)"});
  for (const bool polyak : {true, false}) {
    ShardSolveOptions options;
    benchutil::ApplyShardOverrides(&options);
    options.polyak_dual_steps = polyak;
    options.max_dual_rounds = 24;
    // This instance's intrinsic Lagrangian gap is ~4.5% (the bound cannot
    // meet the stitched primal no matter the duals), so rounds-to-gap is
    // measured against a reachable 7.5%: Polyak reaches it in ~2 rounds,
    // the fixed schedule needs ~6.
    options.gap_tolerance = 0.075;
    auto result = SolveSharded(*inst, options);
    if (!result.ok()) {
      std::cerr << "sharded solve failed: " << result.status() << "\n";
      continue;
    }
    const ShardSolveStats& stats = result->stats;
    const std::string name = polyak ? "polyak" : "fixed 1/sqrt(round)";
    t.NewRow()
        .Add(name)
        .Add(static_cast<int64_t>(stats.dual_rounds))
        .Add(FormatPercent(stats.gap))
        .Add(stats.dual_bound, 1)
        .Add(stats.primal_objective, 1)
        .Add(FormatDouble(stats.lp_seconds, 3));
    benchutil::RecordMetric(
        "shard scale | dual rounds to gap (" + name + ")",
        static_cast<double>(stats.dual_rounds));
    benchutil::RecordMetric("shard scale | dual gap reached (" + name + ")",
                            stats.gap);
  }
  t.Print("Dual coordination: Polyak vs fixed step schedule "
          "(n=120, m=400, gap tol 7.5%)");
}

struct OnlineReplay {
  int64_t pivots = 0;
  int resolves = 0;
  double dirty_shard_fraction = 0.0;  ///< mean over incremental resolves
  double wall_seconds = 0.0;
  double final_total = 0.0;
};

OnlineReplay ReplayOnline(const SvgicInstance& base, const EventLog& log,
                          bool sharded) {
  SessionOptions options;
  options.seed = 7;
  options.use_sharding = sharded;
  options.sharding.plan.num_shards = 4;
  benchutil::ApplyShardOverrides(&options.sharding);
  Timer timer;
  Session session(base, options);
  OnlineReplay replay;
  double dirty_fraction_sum = 0.0;
  int incremental = 0;
  for (const SessionCommand& event : log) {
    auto outcome = session.Apply(event);
    if (!outcome.ok()) {
      std::cerr << "event failed: " << outcome.status() << "\n";
      continue;
    }
    if (!outcome->resolved) continue;
    const ResolveReport& report = outcome->report;
    ++replay.resolves;
    replay.pivots += report.pivots;
    replay.final_total = report.scaled_total;
    if (report.num_shards > 0 && report.path == ResolvePath::kIncremental) {
      dirty_fraction_sum +=
          static_cast<double>(report.num_dirty_shards) / report.num_shards;
      ++incremental;
    }
  }
  replay.dirty_shard_fraction =
      incremental > 0 ? dirty_fraction_sum / incremental : 0.0;
  replay.wall_seconds = timer.ElapsedSeconds();
  return replay;
}

void PrintOnlineSharded() {
  DatasetParams params = ScaleParams(48, 64, 3, 23);
  params.universe_users = 4 * params.num_users + 20;
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }
  EventStreamParams stream;
  stream.num_mutations = 120;
  stream.resolve_every = 4;
  stream.seed = 5;
  const EventLog log = GenerateEventStream(*inst, stream);

  const OnlineReplay sharded = ReplayOnline(*inst, log, /*sharded=*/true);
  const OnlineReplay mono = ReplayOnline(*inst, log, /*sharded=*/false);

  Table t({"mode", "resolves", "pivots", "wall (s)", "dirty shards",
           "final utility"});
  t.NewRow()
      .Add("sharded")
      .Add(static_cast<int64_t>(sharded.resolves))
      .Add(sharded.pivots)
      .Add(FormatDouble(sharded.wall_seconds, 3))
      .Add(FormatPercent(sharded.dirty_shard_fraction))
      .Add(FormatDouble(sharded.final_total, 2));
  t.NewRow()
      .Add("monolithic")
      .Add(static_cast<int64_t>(mono.resolves))
      .Add(mono.pivots)
      .Add(FormatDouble(mono.wall_seconds, 3))
      .Add("-")
      .Add(FormatDouble(mono.final_total, 2));
  t.Print("Online serving: sharded vs monolithic session (n=48, m=64, k=3)");
  std::cout << "sharded/monolithic pivot ratio: "
            << benchutil::Ratio(static_cast<double>(sharded.pivots),
                                static_cast<double>(mono.pivots))
            << " (mean dirty-shard fraction "
            << FormatPercent(sharded.dirty_shard_fraction) << ")\n\n";

  benchutil::RecordMetric("shard scale | online replay (sharded)",
                          sharded.wall_seconds);
  benchutil::RecordMetric("shard scale | online replay (monolithic)",
                          mono.wall_seconds);
  benchutil::RecordMetric(
      "shard scale | online pivot ratio sharded/monolithic",
      mono.pivots > 0
          ? static_cast<double>(sharded.pivots) / mono.pivots
          : -1.0);
  benchutil::RecordMetric("shard scale | online mean dirty-shard fraction",
                          sharded.dirty_shard_fraction);
}

void PrintTables() {
  PrintPlanQuality();
  PrintScaleSweep();
  PrintDualSchedule();
  PrintOnlineSharded();
}

void BM_ShardedSolve(benchmark::State& state) {
  auto inst = GenerateDataset(
      ScaleParams(static_cast<int>(state.range(0)), 400, 5, 8));
  const RunnerConfig config = ShardConfig();
  auto solver = SolverRegistry::Global().Find("AVG-SHARD");
  SolverContext context;
  context.options = &config;
  context.seed = 42;
  for (auto _ : state) {
    auto run = (*solver)->Solve(*inst, context);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_ShardedSolve)->Arg(80)->Arg(160)->Unit(benchmark::kMillisecond);

void BM_MonolithicSolve(benchmark::State& state) {
  auto inst = GenerateDataset(
      ScaleParams(static_cast<int>(state.range(0)), 400, 5, 8));
  const RunnerConfig config = ShardConfig();
  auto solver = SolverRegistry::Global().Find("AVG");
  SolverContext context;
  context.options = &config;
  context.seed = 42;
  for (auto _ : state) {
    auto run = (*solver)->Solve(*inst, context);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_MonolithicSolve)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
