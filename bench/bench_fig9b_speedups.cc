// Figure 9(b): ablation of the two speedup strategies of Section 4.4 —
// the advanced LP transformation (compact LP_SIMP vs slot-expanded
// LP_SVGIC; "-ALP" = without) and the advanced focal-parameter sampling
// ("-AS" = original uniform sampling).
//
// Expected shapes: -ALP pays a large LP-solve penalty (k times more
// variables); -AS pays rounding-time penalty through idle draws; solution
// quality is statistically unchanged (the schemes are outcome-equivalent).

#include "bench_util.h"

#include "core/avg.h"
#include "core/lp_formulation.h"
#include "util/logging.h"
#include "core/objective.h"

namespace savg {
namespace {

void PrintTables() {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 8;
  params.num_items = 14;
  params.num_slots = 4;
  params.seed = 10;
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return;
  }

  // LP phase: compact vs expanded (both exact).
  RelaxationOptions compact;
  compact.method = RelaxationMethod::kSimplex;
  RelaxationOptions expanded;
  expanded.method = RelaxationMethod::kSimplexExpanded;
  auto frac_compact = SolveRelaxation(*inst, compact);
  auto frac_expanded = SolveRelaxation(*inst, expanded);
  if (!frac_compact.ok() || !frac_expanded.ok()) {
    std::cerr << "relaxations failed\n";
    return;
  }

  // Rounding phase: advanced vs original sampling (20 seeds each).
  auto time_rounding = [&](const FractionalSolution& frac, bool advanced) {
    double total_seconds = 0.0;
    double total_value = 0.0;
    int64_t idle = 0;
    const int runs = 20;
    for (int i = 0; i < runs; ++i) {
      AvgOptions opt;
      opt.seed = 1000 + i;
      opt.advanced_sampling = advanced;
      Timer t;
      auto result = RunAvg(*inst, frac, opt);
      total_seconds += t.ElapsedSeconds();
      if (result.ok()) {
        total_value += Evaluate(*inst, result->config).ScaledTotal();
        idle += result->idle_iterations;
      }
    }
    struct Out {
      double seconds, value;
      int64_t idle;
    };
    return Out{total_seconds / runs, total_value / runs, idle / runs};
  };
  const auto adv = time_rounding(*frac_compact, true);
  const auto orig = time_rounding(*frac_compact, false);

  Table t({"variant", "LP solve (s)", "rounding (s)", "idle draws",
           "quality"});
  t.NewRow()
      .Add("AVG (ALP + AS)")
      .Add(frac_compact->solve_seconds, 4)
      .Add(adv.seconds, 6)
      .Add(adv.idle)
      .Add(adv.value, 2);
  t.NewRow()
      .Add("AVG - ALP (expanded LP)")
      .Add(frac_expanded->solve_seconds, 4)
      .Add(adv.seconds, 6)
      .Add(adv.idle)
      .Add(adv.value, 2);
  t.NewRow()
      .Add("AVG - AS (original sampling)")
      .Add(frac_compact->solve_seconds, 4)
      .Add(orig.seconds, 6)
      .Add(orig.idle)
      .Add(orig.value, 2);
  t.Print("Fig 9(b): speedup-strategy ablation (n=8, m=14, k=4)");
  std::printf(
      "Expanded LP has %dx more variables; both LPs reach the same bound "
      "(%.4f vs %.4f).\n",
      inst->num_slots(), frac_compact->lp_objective,
      frac_expanded->lp_objective);
}

void BM_CompactLpSolve(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 8;
  params.num_items = 14;
  params.num_slots = static_cast<int>(state.range(0));
  params.seed = 10;
  auto inst = GenerateDataset(params);
  RelaxationOptions opt;
  opt.method = RelaxationMethod::kSimplex;
  for (auto _ : state) {
    auto frac = SolveRelaxation(*inst, opt);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_CompactLpSolve)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ExpandedLpSolve(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 8;
  params.num_items = 14;
  params.num_slots = static_cast<int>(state.range(0));
  params.seed = 10;
  auto inst = GenerateDataset(params);
  RelaxationOptions opt;
  opt.method = RelaxationMethod::kSimplexExpanded;
  for (auto _ : state) {
    auto frac = SolveRelaxation(*inst, opt);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_ExpandedLpSolve)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
