// Figure 10: subgroup metrics per dataset — (a-c) Inter%/Intra% and
// normalized subgroup density, (d-f) co-display rate and alone rate,
// (g-i) regret-ratio CDFs.
//
// Expected shapes: AVG mostly-intra with the highest normalized density and
// near-zero alone rate; FMG trivially 100% intra (one big group, density
// exactly 1); PER mostly inter (all alone on Yelp, some accidental sharing
// of universally liked items on Epinions); AVG's regret CDF dominates.

#include "bench_util.h"

#include "util/stats.h"

namespace savg {
namespace {

void PrintTables() {
  RunnerConfig config;
  config.relaxation.method = RelaxationMethod::kSubgradient;
  config.avg_repeats = 3;
  config.sdp.diversity_weight = 0.0;
  const std::vector<std::string> algos = benchutil::AlgosOrDefault(false);
  for (DatasetKind kind :
       {DatasetKind::kTimik, DatasetKind::kEpinions, DatasetKind::kYelp}) {
    DatasetParams params;
    params.kind = kind;
    params.num_users = 60;
    params.num_items = 2000;
    params.num_slots = 20;
    params.seed = 11;
    auto rows = RunComparisonNamed(params, /*samples=*/3, algos, config,
                                   benchutil::WorkerOverride());
    if (!rows.ok()) {
      std::cerr << rows.status() << "\n";
      continue;
    }
    Table t({"algorithm", "Intra%", "Inter%", "norm.density", "Co-display%",
             "Alone%", "mean regret"});
    for (const AggregateRow& row : *rows) {
      t.NewRow()
          .Add(row.name)
          .Add(FormatPercent(row.mean_subgroup.intra_fraction))
          .Add(FormatPercent(row.mean_subgroup.inter_fraction))
          .Add(row.mean_subgroup.normalized_density, 2)
          .Add(FormatPercent(row.mean_subgroup.co_display_rate))
          .Add(FormatPercent(row.mean_subgroup.alone_rate))
          .Add(row.mean_regret, 3);
    }
    t.Print(std::string("Fig 10(a-f): ") + DatasetKindName(kind) +
            " subgroup metrics (n=60, m=2000, k=20)");

    // Regret CDF at fixed thresholds (g-i).
    Table cdf({"algorithm", "P(reg<=0.1)", "P(reg<=0.2)", "P(reg<=0.4)",
               "P(reg<=0.6)", "P(reg<=0.8)"});
    for (const AggregateRow& row : *rows) {
      cdf.NewRow().Add(row.name);
      for (double threshold : {0.1, 0.2, 0.4, 0.6, 0.8}) {
        cdf.Add(FormatPercent(CdfAt(row.regret_samples, threshold)));
      }
    }
    cdf.Print(std::string("Fig 10(g-i): ") + DatasetKindName(kind) +
              " regret-ratio CDF");
  }
}

void BM_SubgroupMetrics(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 60;
  params.num_items = 2000;
  params.num_slots = 20;
  params.seed = 11;
  auto inst = GenerateDataset(params);
  auto frac = SolveRelaxation(*inst);
  auto result = RunAvgD(*inst, *frac);
  for (auto _ : state) {
    auto metrics = ComputeSubgroupMetrics(*inst, result->config);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_SubgroupMetrics)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
