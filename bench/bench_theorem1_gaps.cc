// Theorem 1's gap constructions, measured: on instance I_G the optimum is
// n times the group approach's; on instance I_P it is Theta(n) times the
// personalized approach's. AVG must track the optimum on both families.

#include "bench_util.h"

#include "baselines/fmg.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "graph/generators.h"

namespace savg {
namespace {

SvgicInstance InstanceG(int n, int k) {
  SvgicInstance inst(EmptyGraph(n), n * k, k, 0.5);
  for (UserId u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) inst.set_p(u, j * n + u, 1.0);
  }
  inst.FinalizePairs();
  return inst;
}

SvgicInstance InstanceP(int n, int k, double eps) {
  SvgicInstance inst(CompleteGraph(n), n * k, k, 0.5);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < n * k; ++c) inst.set_p(u, c, 1.0 - eps);
    for (int j = 0; j < k; ++j) inst.set_p(u, j * n + u, 1.0);
  }
  for (const Edge& e : inst.graph().edges()) {
    for (ItemId c = 0; c < n * k; ++c) inst.set_tau(e.id, c, 1.0);
  }
  inst.FinalizePairs();
  return inst;
}

void PrintTables() {
  const int k = 2;
  Table tg({"n", "OPT (=PER here)", "group approach", "ratio", "AVG"});
  Table tp({"n", "personalized", "group (near-OPT)", "ratio", "AVG"});
  for (int n : {3, 5, 8, 12}) {
    {
      SvgicInstance inst = InstanceG(n, k);
      auto per = RunPersonalizedTopK(inst);
      FmgOptions fopt;
      fopt.fairness_weight = 0.0;
      auto group = RunFmg(inst, fopt);
      auto frac = SolveRelaxation(inst);
      AvgOptions aopt;
      aopt.seed = n;
      auto avg = RunAvgBest(inst, *frac, 5, aopt);
      const double vo = Evaluate(inst, *per).ScaledTotal();
      const double vg = Evaluate(inst, *group).ScaledTotal();
      tg.NewRow()
          .Add(static_cast<int64_t>(n))
          .Add(vo, 1)
          .Add(vg, 1)
          .Add(vo / vg, 2)
          .Add(Evaluate(inst, avg->config).ScaledTotal(), 1);
    }
    {
      SvgicInstance inst = InstanceP(n, k, 1e-3);
      auto per = RunPersonalizedTopK(inst);
      FmgOptions fopt;
      fopt.fairness_weight = 0.0;
      auto group = RunFmg(inst, fopt);
      auto frac = SolveRelaxation(inst);
      AvgOptions aopt;
      aopt.seed = n;
      auto avg = RunAvgBest(inst, *frac, 5, aopt);
      const double vp = Evaluate(inst, *per).ScaledTotal();
      const double vg = Evaluate(inst, *group).ScaledTotal();
      tp.NewRow()
          .Add(static_cast<int64_t>(n))
          .Add(vp, 1)
          .Add(vg, 1)
          .Add(vg / vp, 2)
          .Add(Evaluate(inst, avg->config).ScaledTotal(), 1);
    }
  }
  tg.Print("Theorem 1, instance I_G: OPT / group = n");
  tp.Print("Theorem 1, instance I_P: OPT / personalized = Theta(n)");
}

void BM_GapInstanceRelaxation(benchmark::State& state) {
  SvgicInstance inst = InstanceP(static_cast<int>(state.range(0)), 2, 1e-3);
  for (auto _ : state) {
    auto frac = SolveRelaxation(inst);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_GapInstanceRelaxation)->Arg(5)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
