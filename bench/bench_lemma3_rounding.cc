// Lemma 3, measured: on the indifferent-preferences / uniform-tau instance
// the trivial independent rounding realizes only O(1/m) of the optimal
// social utility, while dependent rounding (CSF) realizes ~all of it.

#include "bench_util.h"

#include "core/avg.h"
#include "core/objective.h"
#include "graph/generators.h"

namespace savg {
namespace {

void PrintTables() {
  const int n = 8, k = 2;
  Table t({"m", "OPT social", "CSF (AVG)", "independent", "indep/OPT",
           "~1/m"});
  for (int m : {5, 10, 20, 40, 80}) {
    SvgicInstance inst(CompleteGraph(n), m, k, 0.5);
    for (const Edge& e : inst.graph().edges()) {
      for (ItemId c = 0; c < m; ++c) inst.set_tau(e.id, c, 0.5);
    }
    inst.FinalizePairs();
    // The lemma's symmetric LP optimum x = k/m.
    FractionalSolution frac;
    frac.num_users = n;
    frac.num_items = m;
    frac.num_slots = k;
    frac.x.assign(static_cast<size_t>(n) * m, static_cast<double>(k) / m);
    frac.BuildSupporters();
    const double opt_social = k * n * (n - 1) / 2.0;  // w = 1 per pair

    double csf = 0.0, ind = 0.0;
    const int runs = 25;
    for (int i = 0; i < runs; ++i) {
      AvgOptions aopt;
      aopt.seed = 300 + i;
      auto avg = RunAvg(inst, frac, aopt);
      if (avg.ok()) csf += Evaluate(inst, avg->config).social_direct;
      IndependentRoundingOptions iopt;
      iopt.seed = 300 + i;
      auto indep = RunIndependentRounding(inst, frac, iopt);
      if (indep.ok()) ind += Evaluate(inst, indep->config).social_direct;
    }
    csf /= runs;
    ind /= runs;
    t.NewRow()
        .Add(static_cast<int64_t>(m))
        .Add(opt_social, 1)
        .Add(csf, 1)
        .Add(ind, 1)
        .Add(ind / opt_social, 3)
        .Add(1.0 / m, 3);
  }
  t.Print("Lemma 3: independent vs dependent rounding (n=8, k=2)");
}

void BM_IndependentRounding(benchmark::State& state) {
  const int n = 8, k = 2, m = static_cast<int>(state.range(0));
  SvgicInstance inst(CompleteGraph(n), m, k, 0.5);
  for (const Edge& e : inst.graph().edges()) {
    for (ItemId c = 0; c < m; ++c) inst.set_tau(e.id, c, 0.5);
  }
  inst.FinalizePairs();
  FractionalSolution frac;
  frac.num_users = n;
  frac.num_items = m;
  frac.num_slots = k;
  frac.x.assign(static_cast<size_t>(n) * m, static_cast<double>(k) / m);
  frac.BuildSupporters();
  uint64_t seed = 0;
  for (auto _ : state) {
    IndependentRoundingOptions opt;
    opt.seed = ++seed;
    auto result = RunIndependentRounding(inst, frac, opt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IndependentRounding)->Arg(10)->Arg(80);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
