// Figure 3: comparisons on small datasets (Timik random-walk samples)
// against the exact IP — utility and execution time vs the size of the
// user set n (a, b), the item set m (c, d), and the slot count k (e, f).
//
// Expected shapes: AVG/AVG-D close to IP; baselines below; IP time blowing
// up fastest in n and k; utility insensitive to m (top items already in a
// small pool).

#include "bench_util.h"

namespace savg {
namespace {

using benchutil::PrintSweep;
using benchutil::SweepPoint;

DatasetParams Base() {
  DatasetParams p;
  p.kind = DatasetKind::kTimik;
  p.num_users = 6;
  p.num_items = 20;
  p.num_slots = 3;
  p.seed = 2020;
  return p;
}

RunnerConfig Config() {
  RunnerConfig c;
  c.avg_repeats = 5;
  c.ip.mip.max_nodes = 200000;
  c.ip.mip.time_limit_seconds = 20.0;
  return c;
}

void PrintTables() {
  const int kSamples = 3;
  {
    std::vector<SweepPoint> points;
    for (int n : {4, 6, 8, 10, 12}) {
      DatasetParams p = Base();
      p.num_users = n;
      points.push_back({std::to_string(n), p});
    }
    PrintSweep("Fig 3(a,b): vs user-set size n (m=20, k=3)", "n", points,
               kSamples, benchutil::AlgosOrDefault(true), Config());
  }
  {
    std::vector<SweepPoint> points;
    for (int m : {10, 20, 40, 80}) {
      DatasetParams p = Base();
      p.num_items = m;
      points.push_back({std::to_string(m), p});
    }
    PrintSweep("Fig 3(c,d): vs item-set size m (n=6, k=3)", "m", points,
               kSamples, benchutil::AlgosOrDefault(true), Config());
  }
  {
    std::vector<SweepPoint> points;
    for (int k : {2, 3, 4, 6}) {
      DatasetParams p = Base();
      p.num_slots = k;
      points.push_back({std::to_string(k), p});
    }
    PrintSweep("Fig 3(e,f): vs slot count k (n=6, m=20)", "k", points,
               kSamples, benchutil::AlgosOrDefault(true), Config());
  }
}

void BM_IpExactSmall(benchmark::State& state) {
  DatasetParams p = Base();
  p.num_users = static_cast<int>(state.range(0));
  auto inst = GenerateDataset(p);
  RunnerConfig config = Config();
  for (auto _ : state) {
    auto run = RunAlgorithm(*inst, Algo::kIp, config);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_IpExactSmall)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_AvgDSmall(benchmark::State& state) {
  DatasetParams p = Base();
  p.num_users = static_cast<int>(state.range(0));
  auto inst = GenerateDataset(p);
  RunnerConfig config = Config();
  for (auto _ : state) {
    auto run = RunAlgorithm(*inst, Algo::kAvgD, config);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_AvgDSmall)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
