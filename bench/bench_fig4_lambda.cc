// Figure 4: normalized total SAVG utility (vs IP) with the personal/social
// split, for lambda in {0.33, 0.5, 0.67} on small Timik samples.
//
// Expected shapes: PER's share is all-personal with the lowest normalized
// total at high lambda; FMG/SDP improve as lambda grows; AVG/AVG-D closest
// to 1.0 everywhere.

#include "bench_util.h"

namespace savg {
namespace {

void PrintTables() {
  const double kLambdas[] = {0.33, 0.5, 0.67};
  const int kSamples = 3;
  // Successive lambdas share the compact LP's constraint matrix, so the
  // previous point's optimal bases warm-start the next point's solves.
  SweepWarmStart warm;
  for (double lambda : kLambdas) {
    DatasetParams params;
    params.kind = DatasetKind::kTimik;
    params.num_users = 6;
    params.num_items = 16;
    params.num_slots = 3;
    params.lambda = lambda;
    params.seed = 99;
    RunnerConfig config;
    config.avg_repeats = 5;
    config.ip.mip.time_limit_seconds = 20.0;
    Timer point_timer;
    auto rows = RunComparisonNamed(params, kSamples,
                                   benchutil::AlgosOrDefault(true), config,
                                   benchutil::WorkerOverride(), &warm);
    benchutil::RecordMetric("fig4 | lambda=" + FormatDouble(lambda, 2),
                            point_timer.ElapsedSeconds());
    if (!rows.ok()) {
      std::cerr << rows.status() << "\n";
      continue;
    }
    double ip_value = 0.0;
    for (const AggregateRow& row : *rows) {
      if (row.name == "IP") ip_value = row.mean_scaled_total;
    }
    Table t({"algorithm", "normalized total", "Personal%", "Social%"});
    for (const AggregateRow& row : *rows) {
      const double total = row.mean_preference + row.mean_social;
      t.NewRow()
          .Add(row.name)
          .Add(benchutil::Ratio(row.mean_scaled_total, ip_value))
          .Add(total > 0 ? FormatPercent(row.mean_preference / total)
                         : "-")
          .Add(total > 0 ? FormatPercent(row.mean_social / total) : "-");
    }
    t.Print("Fig 4: lambda = " + FormatDouble(lambda, 2) +
            " (normalized by IP)");
  }
}

void BM_RelaxationVsLambda(benchmark::State& state) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 6;
  params.num_items = 16;
  params.num_slots = 3;
  params.lambda = static_cast<double>(state.range(0)) / 100.0;
  params.seed = 99;
  auto inst = GenerateDataset(params);
  for (auto _ : state) {
    auto frac = SolveRelaxation(*inst);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_RelaxationVsLambda)->Arg(33)->Arg(50)->Arg(67)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
