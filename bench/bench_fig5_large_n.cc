// Figure 5: total SAVG utility vs user-set size n on large Timik instances
// (paper defaults m = 10000, k = 50; IP omitted — it cannot finish).
//
// Expected shapes: AVG/AVG-D above every baseline with the margin growing
// in n (social interactions matter more in larger groups); AVG-D slightly
// above AVG.

#include "bench_util.h"

namespace savg {
namespace {

RunnerConfig LargeConfig() {
  RunnerConfig c;
  c.relaxation.method = RelaxationMethod::kSubgradient;
  c.avg_repeats = 3;
  c.sdp.diversity_weight = 0.0;  // O(m k^2 n) similarity pass is hopeless
  return c;
}

void PrintTables() {
  std::vector<benchutil::SweepPoint> points;
  for (int n : {25, 50, 75, 100, 125}) {
    DatasetParams p;
    p.kind = DatasetKind::kTimik;
    p.num_users = n;
    p.num_items = 10000;
    p.num_slots = 50;
    p.seed = 5;
    points.push_back({std::to_string(n), p});
  }
  std::vector<std::string> algos = AllAlgoNames(false);
  algos.insert(algos.begin() + 2, "AVG+LS");  // AVG + local search
  benchutil::PrintSweep("Fig 5: large Timik (m=10000, k=50)", "n", points,
                        /*samples=*/2, benchutil::AlgosOrDefault(algos),
                        LargeConfig());
}

void BM_LargeRelaxation(benchmark::State& state) {
  DatasetParams p;
  p.kind = DatasetKind::kTimik;
  p.num_users = static_cast<int>(state.range(0));
  p.num_items = 10000;
  p.num_slots = 50;
  p.seed = 5;
  auto inst = GenerateDataset(p);
  RelaxationOptions opt;
  opt.method = RelaxationMethod::kSubgradient;
  for (auto _ : state) {
    auto frac = SolveRelaxation(*inst, opt);
    benchmark::DoNotOptimize(frac);
  }
}
BENCHMARK(BM_LargeRelaxation)->Arg(25)->Arg(125)->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_LargeAvgDRounding(benchmark::State& state) {
  DatasetParams p;
  p.kind = DatasetKind::kTimik;
  p.num_users = 125;
  p.num_items = 10000;
  p.num_slots = 50;
  p.seed = 5;
  auto inst = GenerateDataset(p);
  RelaxationOptions opt;
  opt.method = RelaxationMethod::kSubgradient;
  auto frac = SolveRelaxation(*inst, opt);
  for (auto _ : state) {
    auto result = RunAvgD(*inst, *frac);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LargeAvgDRounding)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
