// Closed/open-loop load generator for the serving front-end
// (svgic_serverd / ServeServer), driving the framed binary protocol
// through ServeClient.
//
// Three phases against one server:
//  * uncoalesced — each client owns one session and runs a strict closed
//    loop (one resolve in flight at a time), so every resolve request
//    pays its own Resolve(); the per-request reference cost.
//  * coalesced   — the same clients pipeline bursts of resolve requests,
//    which the server folds into one Resolve() per burst (request
//    coalescing); same request count, a fraction of the solves.
//  * flash crowd — open loop: every client blasts an interleaved
//    mutation/resolve burst without reading responses, far past the
//    admission bound, and counts the kOverloaded shed responses.
//  * untraced / traced — a closed-loop phase in which every client
//    alternates the wire trace flag REQUEST BY REQUEST, so the traced
//    arm (full span tree per request, src/obs/) and the untraced arm
//    (zero tracing: the server runs with sampling and the slow log off)
//    interleave at millisecond granularity and sample identical machine
//    conditions. Each arm's cost is its sum of closed-loop request
//    latencies; a scheduler stall spans both arms and cancels out of
//    the ratio. The phase repeats --ab-reps times (flipping parity each
//    rep) and the reported pair is the rep with the MEDIAN
//    traced/untraced ratio, so no single noisy rep can masquerade as
//    tracing overhead.
//  * unverified / verified — the same interleaved A/B over the wire
//    verify flag (kFrameFlagVerify): the verified arm snapshots every
//    resolve for the off-thread KKT + objective self-check
//    (src/obs/verify.h) while the unverified arm runs with sampling
//    off. The bench also asserts the verifier reported zero failures
//    over the whole stream.
//
// The paired "(coalesced)" / "(uncoalesced)" --json metrics feed the
// machine-speed-independent CI gate (tools/perf_compare.py
// --cold-reference --suffixes): coalesced wall time must stay well under
// the same run's uncoalesced wall time. The paired "(traced)" /
// "(untraced)" metrics gate tracing overhead the same way: always-on
// tracing must stay within a few percent of the untraced wall, and the
// paired "(verified)" / "(unverified)" metrics gate self-verification
// overhead at 2%.
//
// A separate in-process durability phase (skipped against an external
// server; `--durability-only` runs just this phase) measures the closed-loop
// cost of the changelog under fsync=never / on-resolve / every-command
// against a no-durability baseline, then times snapshot-based recovery vs a
// cold full replay of the same data_dir and cross-checks their state
// digests. The paired "(fsync-resolve)" / "(no-durability)" metrics feed
// the CI durability gate (fsync-on-resolve must stay within 15% of the
// volatile closed loop).
//
// By default the server runs in-process on an ephemeral port; --port=
// targets an external svgic_serverd instead (the CI e2e demo), and
// --shutdown-server ends that server's lifecycle with a kShutdown frame.
//
//   bench_serve_load [--port=P] [--host=H] [--clients=C] [--rounds=R]
//                    [--mutations=M] [--resolves=B] [--burst=N]
//                    [--users=U] [--items=I] [--queue-depth=D]
//                    [--ab-reps=K] [--json=path] [--shutdown-server]
//                    [--durability-only]

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "datagen/datasets.h"
#include "durability/recovery.h"
#include "durability/session_store.h"
#include "durability/snapshot.h"
#include "online/session.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/stats.h"

namespace savg {
namespace {

struct LoadConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = start an in-process ServeServer
  int clients = 4;
  int rounds = 6;
  int mutations_per_round = 8;
  int resolves_per_round = 8;
  /// Flash-crowd commands per client (0 disables the phase).
  int burst = 512;
  /// Alternating untraced/traced repetitions for the overhead A/B.
  int ab_reps = 5;
  /// Mutation id ranges (must match the served instance; the in-process
  /// server overwrites them from the generated dataset).
  int users = 20;
  int items = 40;
  int64_t queue_depth = 256;  ///< in-process server only
  bool shutdown_server = false;
  /// Run only the in-process durability phase (its own perf_*.json).
  bool durability_only = false;
  uint64_t seed = 17;
};

/// Per-client tallies, merged after the threads join.
struct ClientStats {
  std::vector<double> resolve_latencies;
  std::vector<double> mutation_latencies;
  int64_t requests = 0;
  int64_t overloaded = 0;
  int64_t errors = 0;
};

SessionCommand RandomMutation(const LoadConfig& config, std::mt19937_64* rng) {
  std::uniform_int_distribution<int> user(0, config.users - 1);
  std::uniform_int_distribution<int> item(0, config.items - 1);
  std::uniform_real_distribution<double> value(0.05, 0.95);
  return MakePref(user(*rng), item(*rng), value(*rng));
}

/// Reads one response, charging its latency to the send timer in `sent`.
Status Receive(ServeClient* client,
               std::unordered_map<uint64_t, Timer>* sent,
               std::vector<double>* latencies, ClientStats* stats) {
  auto response = client->ReadResponse();
  SAVG_RETURN_NOT_OK(response.status());
  auto it = sent->find(response->request_id);
  if (it != sent->end()) {
    latencies->push_back(it->second.ElapsedSeconds());
    sent->erase(it);
  }
  if (response->kind == FrameKind::kOverloaded) {
    ++stats->overloaded;
  } else if (response->kind != FrameKind::kOk) {
    ++stats->errors;
  }
  return Status::OK();
}

/// One client's share of a measured phase: closed-loop mutations, then
/// either closed-loop (`pipeline=false`) or pipelined resolves. `trace`
/// forces the wire trace flag on every request.
Status RunClient(const LoadConfig& config, int client_index, bool pipeline,
                 bool trace, ClientStats* stats) {
  ServeClient client;
  SAVG_RETURN_NOT_OK(client.Connect(config.host, config.port));
  const uint32_t session = static_cast<uint32_t>(client_index);
  std::mt19937_64 rng(config.seed + 1000 + client_index);
  std::unordered_map<uint64_t, Timer> sent;
  for (int round = 0; round < config.rounds; ++round) {
    for (int i = 0; i < config.mutations_per_round; ++i) {
      auto id =
          client.SendApply(session, RandomMutation(config, &rng), trace);
      SAVG_RETURN_NOT_OK(id.status());
      sent.emplace(*id, Timer());
      ++stats->requests;
      SAVG_RETURN_NOT_OK(
          Receive(&client, &sent, &stats->mutation_latencies, stats));
    }
    int outstanding = 0;
    for (int i = 0; i < config.resolves_per_round; ++i) {
      auto id = client.SendApply(session, MakeResolve(), trace);
      SAVG_RETURN_NOT_OK(id.status());
      sent.emplace(*id, Timer());
      ++stats->requests;
      if (pipeline) {
        ++outstanding;
      } else {
        SAVG_RETURN_NOT_OK(
            Receive(&client, &sent, &stats->resolve_latencies, stats));
      }
    }
    for (; outstanding > 0; --outstanding) {
      SAVG_RETURN_NOT_OK(
          Receive(&client, &sent, &stats->resolve_latencies, stats));
    }
  }
  return Status::OK();
}

/// One client's share of an overhead A/B: a closed loop in which one
/// wire flag — trace (`verify_mode` false) or verify — alternates
/// request by request, so both arms sample the same machine conditions.
/// `parity` flips which arm goes first; the round index shifts the
/// pattern too, so the expensive first resolve after each mutation burst
/// alternates arms across rounds. Each request's latency is charged to
/// the arm that issued it (`off_stats` = flag clear, `on_stats` = set).
Status RunAbClient(const LoadConfig& config, int client_index, int parity,
                   bool verify_mode, ClientStats* off_stats,
                   ClientStats* on_stats) {
  ServeClient client;
  SAVG_RETURN_NOT_OK(client.Connect(config.host, config.port));
  const uint32_t session = static_cast<uint32_t>(client_index);
  std::mt19937_64 rng(config.seed + 9000 + client_index);
  std::unordered_map<uint64_t, Timer> sent;
  for (int round = 0; round < config.rounds; ++round) {
    for (int i = 0; i < config.mutations_per_round; ++i) {
      const bool on = ((i + round + parity) & 1) != 0;
      ClientStats* stats = on ? on_stats : off_stats;
      auto id = client.SendApply(session, RandomMutation(config, &rng),
                                 /*trace=*/on && !verify_mode,
                                 /*verify=*/on && verify_mode);
      SAVG_RETURN_NOT_OK(id.status());
      sent.emplace(*id, Timer());
      ++stats->requests;
      SAVG_RETURN_NOT_OK(
          Receive(&client, &sent, &stats->mutation_latencies, stats));
    }
    for (int i = 0; i < config.resolves_per_round; ++i) {
      const bool on = ((i + round + parity) & 1) != 0;
      ClientStats* stats = on ? on_stats : off_stats;
      auto id = client.SendApply(session, MakeResolve(),
                                 /*trace=*/on && !verify_mode,
                                 /*verify=*/on && verify_mode);
      SAVG_RETURN_NOT_OK(id.status());
      sent.emplace(*id, Timer());
      ++stats->requests;
      SAVG_RETURN_NOT_OK(
          Receive(&client, &sent, &stats->resolve_latencies, stats));
    }
  }
  return Status::OK();
}

/// One client's share of the flash crowd: blast the whole burst at
/// session 0 (every client piles onto the same session), then drain.
Status RunFlashClient(const LoadConfig& config, int client_index,
                      ClientStats* stats) {
  ServeClient client;
  SAVG_RETURN_NOT_OK(client.Connect(config.host, config.port));
  std::mt19937_64 rng(config.seed + 5000 + client_index);
  std::unordered_map<uint64_t, Timer> sent;
  for (int i = 0; i < config.burst; ++i) {
    const SessionCommand command =
        i % 2 == 0 ? RandomMutation(config, &rng) : MakeResolve();
    SAVG_RETURN_NOT_OK(client.SendApply(0, command).status());
    ++stats->requests;
  }
  std::vector<double> ignored;
  for (int i = 0; i < config.burst; ++i) {
    SAVG_RETURN_NOT_OK(Receive(&client, &sent, &ignored, stats));
  }
  return Status::OK();
}

void MergeStats(const ClientStats& s, ClientStats* merged) {
  merged->resolve_latencies.insert(merged->resolve_latencies.end(),
                                   s.resolve_latencies.begin(),
                                   s.resolve_latencies.end());
  merged->mutation_latencies.insert(merged->mutation_latencies.end(),
                                    s.mutation_latencies.begin(),
                                    s.mutation_latencies.end());
  merged->requests += s.requests;
  merged->overloaded += s.overloaded;
  merged->errors += s.errors;
}

/// Closed-loop seconds this arm's requests spent in flight, excluding
/// the slowest 10% — the per-arm cost measure for the interleaved
/// tracing A/B (a phase wall cannot be split between the interleaved
/// arms). The trim matters: the LP engine's periodic refactorizations
/// make a few resolves 30-80x the median, and which ARM such a spike
/// lands on is an accident of request position, so untrimmed sums
/// measure spike placement instead of tracing overhead.
double TrimmedLatencySum(const ClientStats& stats) {
  std::vector<double> all;
  all.reserve(stats.resolve_latencies.size() +
              stats.mutation_latencies.size());
  all.insert(all.end(), stats.resolve_latencies.begin(),
             stats.resolve_latencies.end());
  all.insert(all.end(), stats.mutation_latencies.begin(),
             stats.mutation_latencies.end());
  std::sort(all.begin(), all.end());
  const size_t keep = all.size() - all.size() / 10;
  double total = 0.0;
  for (size_t i = 0; i < keep; ++i) total += all[i];
  return total;
}

/// Fans `fn` out over config.clients threads and merges the tallies.
/// Returns the phase wall-clock seconds.
template <typename Fn>
double RunPhase(const LoadConfig& config, Fn fn, ClientStats* merged) {
  std::vector<ClientStats> stats(config.clients);
  std::vector<std::thread> threads;
  Timer timer;
  threads.reserve(config.clients);
  for (int i = 0; i < config.clients; ++i) {
    threads.emplace_back([&, i] {
      Status status = fn(i, &stats[i]);
      if (!status.ok()) std::cerr << "client " << i << ": " << status << "\n";
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall = timer.ElapsedSeconds();
  for (const ClientStats& s : stats) MergeStats(s, merged);
  return wall;
}

/// The median-ratio rep of one interleaved flag A/B: per-arm trimmed
/// closed-loop latency sums plus the tallies behind them.
struct AbResult {
  double off_wall = 0.0;
  double on_wall = 0.0;
  ClientStats off;
  ClientStats on;
};

/// Runs one interleaved overhead A/B (`ab_reps` closed-loop reps of
/// RunAbClient, parity flipping every rep so neither arm systematically
/// gets the even-numbered requests) and returns the rep with the MEDIAN
/// on/off ratio, which no single noisy rep can drag over the CI gate.
/// Per-rep sums go to stderr: when the CI overhead gate flaps, that
/// spread is the first thing to look at.
AbResult RunAbPhase(const LoadConfig& config, bool verify_mode,
                    const char* label) {
  std::vector<ClientStats> rep_off(config.ab_reps);
  std::vector<ClientStats> rep_on(config.ab_reps);
  std::vector<double> off_wall(config.ab_reps);
  std::vector<double> on_wall(config.ab_reps);
  for (int rep = 0; rep < config.ab_reps; ++rep) {
    std::vector<ClientStats> off(config.clients), on(config.clients);
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (int i = 0; i < config.clients; ++i) {
      threads.emplace_back([&, i] {
        Status status =
            RunAbClient(config, i, rep & 1, verify_mode, &off[i], &on[i]);
        if (!status.ok()) {
          std::cerr << label << " ab client " << i << ": " << status << "\n";
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (int i = 0; i < config.clients; ++i) {
      MergeStats(off[i], &rep_off[rep]);
      MergeStats(on[i], &rep_on[rep]);
    }
    off_wall[rep] = TrimmedLatencySum(rep_off[rep]);
    on_wall[rep] = TrimmedLatencySum(rep_on[rep]);
    std::cerr << label << " ab rep " << rep << ": off "
              << FormatDouble(off_wall[rep], 3) << "s, on "
              << FormatDouble(on_wall[rep], 3) << "s (ratio "
              << FormatDouble(on_wall[rep] / off_wall[rep], 3) << ")\n";
  }
  std::vector<int> by_ratio(config.ab_reps);
  for (int rep = 0; rep < config.ab_reps; ++rep) by_ratio[rep] = rep;
  std::sort(by_ratio.begin(), by_ratio.end(), [&](int a, int b) {
    return on_wall[a] * off_wall[b] < on_wall[b] * off_wall[a];
  });
  const int median_rep = by_ratio[by_ratio.size() / 2];
  AbResult result;
  result.off_wall = off_wall[median_rep];
  result.on_wall = on_wall[median_rep];
  result.off = std::move(rep_off[median_rep]);
  result.on = std::move(rep_on[median_rep]);
  return result;
}

/// Crude numeric-field extraction from the status JSON (the bench only
/// reports a couple of scalar fields; no JSON parser in the repo).
double FindJsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// Value of one named counter in the status JSON's metrics array
/// (`{"name": "<name>", "value": N}` rows); -1 when absent.
double FindMetricValue(const std::string& json, const std::string& name) {
  const std::string anchor = "\"name\": \"" + name + "\"";
  const size_t pos = json.find(anchor);
  if (pos == std::string::npos) return -1.0;
  const std::string key = "\"value\": ";
  const size_t value_pos = json.find(key, pos);
  if (value_pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + value_pos + key.size(), nullptr);
}

void AddPhaseRow(Table* t, const std::string& name, double wall,
                 const ClientStats& stats) {
  t->NewRow()
      .Add(name)
      .Add(stats.requests)
      .Add(FormatDouble(wall, 3))
      .Add(FormatDouble(static_cast<double>(stats.requests) / wall, 0))
      .Add(FormatDouble(Percentile(stats.resolve_latencies, 50) * 1000, 2))
      .Add(FormatDouble(Percentile(stats.resolve_latencies, 99) * 1000, 2))
      .Add(stats.overloaded)
      .Add(stats.errors);
}

/// rm -rf for the bench durability scratch directories (stale epoch files
/// from a previous run would skew the recovery rows).
void RemoveTreeRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string child = path + "/" + name;
    if (::unlink(child.c_str()) != 0) RemoveTreeRecursive(child);
  }
  ::closedir(dir);
  ::rmdir(path.c_str());
}

/// The command stream every durability arm replays: the same mutation mix
/// as the serving phases, one resolve per mutation burst. Twice the
/// serving rounds so the closed loop comfortably clears the perf gate's
/// noise floor.
CommandLog BuildDurabilityStream(const LoadConfig& config) {
  CommandLog log;
  std::mt19937_64 rng(config.seed + 31);
  for (int round = 0; round < 2 * config.rounds; ++round) {
    for (int i = 0; i < config.mutations_per_round; ++i) {
      log.push_back(RandomMutation(config, &rng));
    }
    log.push_back(MakeResolve());
  }
  return log;
}

struct DurabilityArmResult {
  double wall = 0.0;
  int64_t appends = 0;
  int64_t fsyncs = 0;
  int64_t snapshots = 0;
};

/// One closed-loop durability arm: a direct in-process Session (no
/// sockets/threads — the arms differ only in the journal's fsync policy,
/// so the wire stack would just add shared noise) applying the shared
/// stream. `durability` == nullptr is the no-journal baseline. The cold
/// first solve is identical across arms and kept out of the timer, like
/// the serving phases' warm-up. Snapshots run in-band exactly as the
/// SessionManager drives them.
Result<DurabilityArmResult> RunDurabilityArm(const SvgicInstance& inst,
                                             const CommandLog& log,
                                             const DurabilityOptions* durability,
                                             uint64_t seed) {
  MetricsRegistry registry;
  SessionOptions session_options;
  session_options.seed = seed;
  Session session(inst, session_options);
  std::unique_ptr<SessionStore> store;
  SessionJournal* journal = nullptr;
  if (durability != nullptr) {
    store = std::make_unique<SessionStore>(*durability, &registry);
    auto attached = store->Attach(0, session);
    SAVG_RETURN_NOT_OK(attached.status());
    journal = *attached;
    session.set_journal(journal);
  }
  SAVG_RETURN_NOT_OK(session.Apply(MakeResolve()).status());
  Timer timer;
  for (const SessionCommand& command : log) {
    SAVG_RETURN_NOT_OK(session.Apply(command).status());
    if (journal != nullptr && journal->ShouldSnapshot()) {
      SAVG_RETURN_NOT_OK(journal->TakeSnapshot(session));
    }
  }
  DurabilityArmResult result;
  result.wall = timer.ElapsedSeconds();
  result.appends = registry.GetCounter("durability.appends")->value();
  result.fsyncs = registry.GetCounter("durability.fsyncs")->value();
  result.snapshots = registry.GetCounter("durability.snapshots")->value();
  // The arm ends crash-like: no Flush(), no final snapshot — the recovery
  // rows below then measure a real post-kill replay, not an empty one.
  return result;
}

struct RecoveryTiming {
  double seconds = 0.0;
  uint64_t replayed = 0;
  uint64_t applied_seq = 0;
  uint64_t digest = 0;
};

Result<RecoveryTiming> TimeRecovery(const std::string& data_dir, bool cold) {
  RecoveryOptions options;
  options.cold_replay = cold;
  RecoveryManager manager(data_dir, SessionOptions{}, options);
  Timer timer;
  auto recovered = manager.RecoverSession(0);
  SAVG_RETURN_NOT_OK(recovered.status());
  RecoveryTiming timing;
  timing.seconds = timer.ElapsedSeconds();
  timing.replayed = recovered->replayed_commands;
  timing.applied_seq = recovered->applied_seq;
  timing.digest = SessionStateDigest(recovered->session->CaptureState());
  return timing;
}

/// The durability phase: closed-loop walls across fsync policies against a
/// no-durability baseline, then snapshot recovery vs cold full replay of
/// the fsync-resolve arm's data_dir (with a digest cross-check). In-process
/// only — against an external server the journal lives out of reach.
int RunDurabilityPhase(const LoadConfig& config) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = config.users;
  params.num_items = config.items;
  params.num_slots = 3;
  params.lambda = 0.5;
  params.seed = config.seed;
  auto inst = GenerateDataset(params);
  if (!inst.ok()) {
    std::cerr << inst.status() << "\n";
    return 1;
  }
  const CommandLog log = BuildDurabilityStream(config);
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string root =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/savg_bench_durability";
  RemoveTreeRecursive(root);

  struct Arm {
    const char* label;
    bool durable;
    FsyncPolicy::Mode mode;
  };
  const Arm arms[] = {
      {"no-durability", false, FsyncPolicy::Mode::kNever},
      {"fsync-never", true, FsyncPolicy::Mode::kNever},
      {"fsync-resolve", true, FsyncPolicy::Mode::kOnResolve},
      {"fsync-command", true, FsyncPolicy::Mode::kEveryN},
  };
  // Every arm applies the identical deterministic stream, so run-to-run
  // spread is pure machine noise (scheduler, CPU frequency, page cache) on
  // ~0.3s walls — big enough to flip the 1.15x gate. Round-robin the arms
  // across a few reps (a slow stretch of machine hits all arms, not one)
  // and keep each arm's MIN wall, the least-noise estimate of its cost.
  constexpr int kReps = 3;
  constexpr int kNumArms = static_cast<int>(sizeof(arms) / sizeof(arms[0]));
  double best_wall[kNumArms];
  DurabilityArmResult counters[kNumArms];
  std::fill(best_wall, best_wall + kNumArms, 1e300);
  std::string resolve_dir;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int a = 0; a < kNumArms; ++a) {
      const Arm& arm = arms[a];
      DurabilityOptions durability;
      durability.data_dir = root + "/" + arm.label;
      durability.fsync.mode = arm.mode;
      durability.fsync.every_n = 1;
      durability.snapshot_interval_seconds = 0.0;
      durability.snapshot_every_commands = 64;
      if (arm.mode == FsyncPolicy::Mode::kOnResolve) {
        resolve_dir = durability.data_dir;
      }
      // Fresh directory per rep; the last rep's files stay on disk for the
      // recovery rows below.
      RemoveTreeRecursive(durability.data_dir);
      auto result = RunDurabilityArm(*inst, log,
                                     arm.durable ? &durability : nullptr,
                                     config.seed);
      if (!result.ok()) {
        std::cerr << "durability arm " << arm.label << ": "
                  << result.status() << "\n";
        return 1;
      }
      best_wall[a] = std::min(best_wall[a], result->wall);
      counters[a] = *result;
    }
  }
  Table t({"durability", "commands", "wall (s)", "cmd/s", "appends",
           "fsyncs", "snapshots"});
  for (int a = 0; a < kNumArms; ++a) {
    t.NewRow()
        .Add(std::string(arms[a].label))
        .Add(static_cast<int64_t>(log.size()))
        .Add(FormatDouble(best_wall[a], 3))
        .Add(FormatDouble(static_cast<double>(log.size()) / best_wall[a], 0))
        .Add(counters[a].appends)
        .Add(counters[a].fsyncs)
        .Add(counters[a].snapshots);
    benchutil::RecordMetric(
        std::string("serve durability | closed loop (") + arms[a].label + ")",
        best_wall[a]);
  }
  t.Print("Durability closed loop: " + std::to_string(log.size()) +
          " commands, snapshot every 64, min of " + std::to_string(kReps) +
          " reps");

  // Recovery of the fsync-resolve arm's directory, ended crash-like above:
  // warm (newest valid snapshot + tail replay) vs cold (oldest retained
  // snapshot, maximal replay). Both must land on the same state digest —
  // the snapshot fast-path may not lose anything.
  auto warm = TimeRecovery(resolve_dir, /*cold=*/false);
  auto cold = TimeRecovery(resolve_dir, /*cold=*/true);
  if (!warm.ok() || !cold.ok()) {
    std::cerr << "recovery failed: "
              << (!warm.ok() ? warm.status() : cold.status()) << "\n";
    return 1;
  }
  std::cout << "recovery: warm " << FormatDouble(warm->seconds * 1000, 2)
            << "ms (" << warm->replayed << " replayed), cold replay "
            << FormatDouble(cold->seconds * 1000, 2) << "ms ("
            << cold->replayed << " replayed), applied_seq "
            << warm->applied_seq << "\n";
  if (warm->digest != cold->digest) {
    std::cerr << "recovery digest mismatch: warm != cold replay — the "
                 "snapshot fast-path diverged from full replay\n";
    return 1;
  }
  benchutil::RecordMetric("serve durability | recovery (warm)",
                          warm->seconds);
  benchutil::RecordMetric("serve durability | recovery (cold replay)",
                          cold->seconds);
  return 0;
}

int RunLoad(LoadConfig config) {
  if (config.durability_only) {
    const int rc = RunDurabilityPhase(config);
    benchutil::WriteJsonMetrics();
    return rc;
  }
  const bool external_server = config.port != 0;
  // In-process server unless --port= points at an external svgic_serverd.
  std::unique_ptr<ServeServer> local;
  if (config.port == 0) {
    DatasetParams params;
    params.kind = DatasetKind::kTimik;
    params.num_users = config.users;
    params.num_items = config.items;
    params.num_slots = 3;
    params.lambda = 0.5;
    params.seed = config.seed;
    auto inst = GenerateDataset(params);
    if (!inst.ok()) {
      std::cerr << inst.status() << "\n";
      return 1;
    }
    ServerOptions options;
    options.admission.max_queue_depth = config.queue_depth;
    // Zero tracing unless a request forces it via the wire flag: the
    // untraced phases are then a true no-tracing baseline, and the traced
    // phase measures the full (every-request) tracing cost.
    options.trace.sample_every = 0;
    options.trace.slow_seconds = 0.0;
    // Same for self-verification: only the wire verify flag triggers it,
    // so the unverified A/B arm is a clean baseline.
    options.verify.sample_every = 0;
    local = std::make_unique<ServeServer>(options);
    for (int i = 0; i < config.clients; ++i) {
      SessionOptions session_options;
      session_options.seed = config.seed + i;
      local->CreateSession(*inst, session_options);
    }
    Status started = local->Start();
    if (!started.ok()) {
      std::cerr << started << "\n";
      return 1;
    }
    config.port = local->port();
  }

  // Warm-up: first resolve per session is the cold LP solve; keep it out
  // of the measured phases so they compare incremental resolves only.
  {
    ServeClient client;
    Status connected = client.Connect(config.host, config.port);
    if (!connected.ok()) {
      std::cerr << connected << "\n";
      return 1;
    }
    for (int i = 0; i < config.clients; ++i) {
      auto response = client.Apply(static_cast<uint32_t>(i), MakeResolve());
      if (!response.ok()) {
        std::cerr << "warm-up resolve failed: " << response.status() << "\n";
        return 1;
      }
    }
  }

  ClientStats uncoalesced, coalesced, flash;
  const double uncoalesced_wall = RunPhase(
      config,
      [&](int i, ClientStats* s) {
        return RunClient(config, i, /*pipeline=*/false, /*trace=*/false, s);
      },
      &uncoalesced);
  const double coalesced_wall = RunPhase(
      config,
      [&](int i, ClientStats* s) {
        return RunClient(config, i, /*pipeline=*/true, /*trace=*/false, s);
      },
      &coalesced);
  // Tracing-overhead A/B: closed-loop reps in which each client flips
  // the wire trace flag request by request, so the two arms interleave
  // at millisecond granularity and a scheduler stall lands on both.
  const AbResult trace_ab =
      RunAbPhase(config, /*verify_mode=*/false, "trace");
  // Self-verification overhead A/B: the same interleaving over the wire
  // verify flag. With sampling off (verify.sample_every = 0 below) the
  // unverified arm is a true no-verification baseline; the verified arm
  // pays the full per-request cost — snapshotting the instance + config
  // on the hot path plus the off-thread KKT + objective audit.
  const AbResult verify_ab =
      RunAbPhase(config, /*verify_mode=*/true, "verify");
  double flash_wall = 0.0;
  if (config.burst > 0) {
    flash_wall = RunPhase(
        config,
        [&](int i, ClientStats* s) { return RunFlashClient(config, i, s); },
        &flash);
  }

  // Server-side counters (coalesce ratio, shed count, verifier verdicts)
  // from the status command; fetched before the shutdown frame. The
  // in-process verifier is flushed first so every enqueued self-check
  // has reported.
  if (local != nullptr) local->verifier().Flush();
  double coalesce_ratio = -1.0;
  double server_shed = -1.0;
  double verify_pass = -1.0;
  double verify_fail = -1.0;
  {
    ServeClient client;
    if (client.Connect(config.host, config.port).ok()) {
      auto status_json = client.FetchStatus();
      if (status_json.ok()) {
        coalesce_ratio = FindJsonNumber(*status_json, "coalesce_ratio");
        server_shed = FindJsonNumber(*status_json, "shed");
        verify_pass = FindMetricValue(*status_json, "verify.pass");
        verify_fail = FindMetricValue(*status_json, "verify.fail");
      }
      if (config.shutdown_server) {
        if (client.SendShutdown().ok()) client.ReadResponse();
      }
    }
  }

  Table t({"phase", "requests", "wall (s)", "req/s", "p50 resolve (ms)",
           "p99 resolve (ms)", "overloaded", "errors"});
  AddPhaseRow(&t, "uncoalesced (closed loop)", uncoalesced_wall, uncoalesced);
  AddPhaseRow(&t, "coalesced (pipelined)", coalesced_wall, coalesced);
  // For the interleaved A/B rows, "wall" is the arm's closed-loop
  // latency sum (the two arms share one phase wall).
  AddPhaseRow(&t, "untraced (interleaved)", trace_ab.off_wall, trace_ab.off);
  AddPhaseRow(&t, "traced (interleaved)", trace_ab.on_wall, trace_ab.on);
  AddPhaseRow(&t, "unverified (interleaved)", verify_ab.off_wall,
              verify_ab.off);
  AddPhaseRow(&t, "verified (interleaved)", verify_ab.on_wall,
              verify_ab.on);
  if (config.burst > 0) AddPhaseRow(&t, "flash crowd", flash_wall, flash);
  t.Print("Serve load: " + std::to_string(config.clients) + " clients x " +
          std::to_string(config.rounds) + " rounds (" +
          std::to_string(config.mutations_per_round) + " mutations + " +
          std::to_string(config.resolves_per_round) + " resolves)");
  std::cout << "server coalesce ratio "
            << (coalesce_ratio >= 0 ? FormatDouble(coalesce_ratio, 3) : "n/a")
            << ", server shed count "
            << (server_shed >= 0
                    ? std::to_string(static_cast<int64_t>(server_shed))
                    : "n/a")
            << ", self-verifications "
            << (verify_pass >= 0
                    ? std::to_string(static_cast<int64_t>(verify_pass))
                    : "n/a")
            << " passed / "
            << (verify_fail >= 0
                    ? std::to_string(static_cast<int64_t>(verify_fail))
                    : "n/a")
            << " failed\n";

  benchutil::RecordMetric("serve load | resolve phase (coalesced)",
                          coalesced_wall);
  benchutil::RecordMetric("serve load | resolve phase (uncoalesced)",
                          uncoalesced_wall);
  benchutil::RecordMetric("serve load | p50 resolve - coalesced",
                          Percentile(coalesced.resolve_latencies, 50));
  benchutil::RecordMetric("serve load | p99 resolve - coalesced",
                          Percentile(coalesced.resolve_latencies, 99));
  benchutil::RecordMetric("serve load | p50 resolve - uncoalesced",
                          Percentile(uncoalesced.resolve_latencies, 50));
  benchutil::RecordMetric("serve load | p99 resolve - uncoalesced",
                          Percentile(uncoalesced.resolve_latencies, 99));
  benchutil::RecordMetric("serve load | closed loop (untraced)",
                          trace_ab.off_wall);
  benchutil::RecordMetric("serve load | closed loop (traced)",
                          trace_ab.on_wall);
  benchutil::RecordMetric("serve load | p99 resolve - traced",
                          Percentile(trace_ab.on.resolve_latencies, 99));
  benchutil::RecordMetric("serve load | closed loop (unverified)",
                          verify_ab.off_wall);
  benchutil::RecordMetric("serve load | closed loop (verified)",
                          verify_ab.on_wall);
  benchutil::RecordMetric("serve load | p99 resolve - verified",
                          Percentile(verify_ab.on.resolve_latencies, 99));
  benchutil::RecordMetric("serve load | verify failures",
                          verify_fail >= 0 ? verify_fail : 0.0);
  benchutil::RecordMetric("serve load | flash crowd shed responses",
                          static_cast<double>(flash.overloaded));
  benchutil::RecordMetric("serve load | coalesce ratio", coalesce_ratio);

  // Durability arms run in-process only: against an external server the
  // journal (and its data_dir) lives in the server process, out of reach.
  int durability_rc = 0;
  if (!external_server) durability_rc = RunDurabilityPhase(config);
  benchutil::WriteJsonMetrics();

  if (local != nullptr) local->Shutdown();
  if (durability_rc != 0) return durability_rc;
  // A flash crowd that never sheds means the admission bound was not
  // exercised — fail loudly so CI notices a broken demo, not a green run.
  if (config.burst > 0 && flash.overloaded == 0) {
    std::cerr << "flash crowd produced no kOverloaded responses; raise "
                 "--burst or lower --queue-depth\n";
    return 1;
  }
  // The verified arm forced a self-check on half its requests; any
  // failure means the solver handed out a configuration that does not
  // re-evaluate to its reported objective (or violates KKT) — a
  // correctness bug, not a perf problem.
  if (verify_fail > 0) {
    std::cerr << "self-verification reported "
              << static_cast<int64_t>(verify_fail)
              << " failed check(s) over the bench stream\n";
    return 1;
  }
  return 0;
}

long ParseLong(const char* flag, const char* value) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    std::cerr << flag << " expects a non-negative integer, got \"" << value
              << "\"\n";
    std::exit(2);
  }
  return parsed;
}

}  // namespace
}  // namespace savg

int main(int argc, char** argv) {
  savg::LoadConfig config;
  struct IntFlag {
    const char* name;
    int* value;
  };
  const IntFlag int_flags[] = {
      {"--port=", &config.port},
      {"--clients=", &config.clients},
      {"--rounds=", &config.rounds},
      {"--mutations=", &config.mutations_per_round},
      {"--resolves=", &config.resolves_per_round},
      {"--burst=", &config.burst},
      {"--users=", &config.users},
      {"--items=", &config.items},
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool matched = false;
    for (const IntFlag& flag : int_flags) {
      const size_t len = std::strlen(flag.name);
      if (std::strncmp(arg, flag.name, len) == 0) {
        *flag.value =
            static_cast<int>(savg::ParseLong(flag.name, arg + len));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::strncmp(arg, "--host=", 7) == 0) {
      config.host = arg + 7;
    } else if (std::strncmp(arg, "--ab-reps=", 10) == 0) {
      config.ab_reps =
          static_cast<int>(savg::ParseLong("--ab-reps", arg + 10));
    } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
      config.queue_depth = savg::ParseLong("--queue-depth", arg + 14);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed =
          static_cast<uint64_t>(savg::ParseLong("--seed", arg + 7));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      savg::benchutil::JsonPath() = arg + 7;
    } else if (std::strcmp(arg, "--shutdown-server") == 0) {
      config.shutdown_server = true;
    } else if (std::strcmp(arg, "--durability-only") == 0) {
      config.durability_only = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (config.clients < 1 || config.rounds < 1 ||
      config.resolves_per_round < 1 || config.ab_reps < 1) {
    std::cerr << "--clients/--rounds/--resolves/--ab-reps must be >= 1\n";
    return 2;
  }
  return savg::RunLoad(config);
}
