// Figure 16: the (simulated) user study — (a) distribution of
// questionnaire lambdas, (b) total SAVG utility vs mean Likert
// satisfaction per method with the utility/satisfaction correlations,
// (c, d) subgroup metrics of the study configurations.
//
// Expected shapes: lambdas spread over [0.15, 0.85]; AVG highest on both
// utility and satisfaction; strongly positive Spearman/Pearson correlation
// (paper: 0.835 / 0.814); AVG with normalized density > 1 and 0% alone.

#include "bench_util.h"

#include "datagen/user_study.h"
#include "util/stats.h"

namespace savg {
namespace {

void PrintTables() {
  UserStudyParams params;
  params.num_participants = 44;
  params.seed = 16;
  auto study = RunUserStudy(params);
  if (!study.ok()) {
    std::cerr << study.status() << "\n";
    return;
  }
  // (a) lambda histogram.
  Table hist({"lambda bin", "participants"});
  const double edges[] = {0.15, 0.3, 0.45, 0.6, 0.75, 0.85};
  for (int b = 0; b + 1 < 6; ++b) {
    int count = 0;
    for (double l : study->lambdas) {
      if (l >= edges[b] && (l < edges[b + 1] || b == 4)) ++count;
    }
    hist.NewRow()
        .Add(std::string("[")
                 .append(FormatDouble(edges[b], 2))
                 .append(", ")
                 .append(FormatDouble(edges[b + 1], 2))
                 .append(")"))
        .Add(static_cast<int64_t>(count));
  }
  hist.Print("Fig 16(a): participant lambda distribution (mean " +
             FormatDouble(Mean(study->lambdas), 2) + ")");

  // (b) utility vs satisfaction.
  Table t({"method", "total SAVG utility", "mean satisfaction (1-5)",
           "Intra%", "norm.density", "Co-display%", "Alone%"});
  for (const auto& rec : study->methods) {
    t.NewRow()
        .Add(rec.method)
        .Add(rec.total_savg_utility, 2)
        .Add(rec.mean_satisfaction, 2)
        .Add(FormatPercent(rec.subgroup.intra_fraction))
        .Add(rec.subgroup.normalized_density, 2)
        .Add(FormatPercent(rec.subgroup.co_display_rate))
        .Add(FormatPercent(rec.subgroup.alone_rate));
  }
  t.Print("Fig 16(b-d): study results, 44 participants");
  std::printf(
      "Utility-satisfaction correlation: Spearman %.3f, Pearson %.3f "
      "(paper reports 0.835 / 0.814)\n",
      study->spearman, study->pearson);
}

void BM_UserStudy(benchmark::State& state) {
  UserStudyParams params;
  params.num_participants = 20;
  params.seed = 16;
  for (auto _ : state) {
    auto study = RunUserStudy(params);
    benchmark::DoNotOptimize(study);
  }
}
BENCHMARK(BM_UserStudy)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace savg

SAVG_BENCH_MAIN(savg::PrintTables)
