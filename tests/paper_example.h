// Shared builder for the paper's running example (Table 1): four users
// (Alice, Bob, Charlie, Dave), five items (c1 tripod, c2 DSLR camera,
// c3 PSD, c4 memory card, c5 SP camera), k = 3 slots.
//
// Item ids are 0-based: paper's c1 -> 0, ..., c5 -> 4.

#pragma once

#include "core/configuration.h"
#include "core/problem.h"
#include "graph/graph.h"

namespace savg {

inline constexpr UserId kAlice = 0;
inline constexpr UserId kBob = 1;
inline constexpr UserId kCharlie = 2;
inline constexpr UserId kDave = 3;

/// Builds the Table 1 instance with the given lambda.
inline SvgicInstance MakePaperExample(double lambda) {
  SocialGraph g(4);
  // Directed edges with tau columns in Table 1:
  // (A,B), (A,C), (A,D), (B,A), (B,C), (C,A), (C,B), (D,A).
  const EdgeId ab = *g.AddEdge(kAlice, kBob);
  const EdgeId ac = *g.AddEdge(kAlice, kCharlie);
  const EdgeId ad = *g.AddEdge(kAlice, kDave);
  const EdgeId ba = *g.AddEdge(kBob, kAlice);
  const EdgeId bc = *g.AddEdge(kBob, kCharlie);
  const EdgeId ca = *g.AddEdge(kCharlie, kAlice);
  const EdgeId cb = *g.AddEdge(kCharlie, kBob);
  const EdgeId da = *g.AddEdge(kDave, kAlice);

  SvgicInstance inst(g, /*num_items=*/5, /*num_slots=*/3, lambda);
  // Preference rows of Table 1 (items c1..c5).
  const double p[4][5] = {
      {0.8, 0.85, 0.1, 0.05, 1.0},   // Alice
      {0.7, 1.0, 0.15, 0.2, 0.1},    // Bob
      {0.0, 0.15, 0.7, 0.6, 0.1},    // Charlie
      {0.1, 0.0, 0.3, 1.0, 0.95},    // Dave
  };
  for (UserId u = 0; u < 4; ++u) {
    for (ItemId c = 0; c < 5; ++c) inst.set_p(u, c, p[u][c]);
  }
  // Social utility columns of Table 1, rows c1..c5.
  const double tau[8][5] = {
      // c1     c2    c3    c4    c5
      {0.2, 0.05, 0.1, 0.0, 0.05},   // tau(A,B,.)
      {0.0, 0.05, 0.1, 0.0, 0.3},    // tau(A,C,.)
      {0.2, 0.05, 0.1, 0.05, 0.2},   // tau(A,D,.)
      {0.2, 0.05, 0.1, 0.05, 0.05},  // tau(B,A,.)
      {0.0, 0.05, 0.1, 0.2, 0.0},    // tau(B,C,.)
      {0.0, 0.05, 0.1, 0.05, 0.3},   // tau(C,A,.)
      {0.1, 0.05, 0.1, 0.2, 0.05},   // tau(C,B,.)
      {0.3, 0.05, 0.05, 0.0, 0.25},  // tau(D,A,.)
  };
  const EdgeId edges[8] = {ab, ac, ad, ba, bc, ca, cb, da};
  for (int e = 0; e < 8; ++e) {
    for (ItemId c = 0; c < 5; ++c) {
      if (tau[e][c] > 0.0) inst.set_tau(edges[e], c, tau[e][c]);
    }
  }
  inst.FinalizePairs();
  return inst;
}

namespace internal {
inline Configuration MakeConfigFromTable(const int table[4][3]) {
  Configuration config(4, 3, 5);
  for (UserId u = 0; u < 4; ++u) {
    for (SlotId s = 0; s < 3; ++s) {
      Status st = config.Set(u, s, table[u][s]);
      (void)st;
    }
  }
  return config;
}
}  // namespace internal

/// The SAVG configuration of Figure 1(b) (the example's optimum, 10.35).
inline Configuration MakeSavgOptimalConfig() {
  const int t[4][3] = {{4, 0, 1}, {1, 0, 3}, {4, 2, 3}, {4, 0, 3}};
  return internal::MakeConfigFromTable(t);
}

/// Table 7: configuration returned by AVG in Example 4 (9.75).
inline Configuration MakeAvgTable7Config() {
  const int t[4][3] = {{4, 1, 0}, {1, 3, 0}, {2, 3, 4}, {4, 3, 0}};
  return internal::MakeConfigFromTable(t);
}

/// Table 8: configuration returned by AVG-D in Example 5 (9.85).
inline Configuration MakeAvgDTable8Config() {
  const int t[4][3] = {{4, 0, 1}, {4, 0, 1}, {4, 2, 1}, {4, 0, 3}};
  return internal::MakeConfigFromTable(t);
}

/// Table 9 rows (Example 5 totals: 8.25 / 8.35 / 8.4 / 8.7).
inline Configuration MakePersonalizedConfig() {
  const int t[4][3] = {{4, 1, 0}, {1, 0, 3}, {2, 3, 1}, {3, 4, 2}};
  return internal::MakeConfigFromTable(t);
}
inline Configuration MakeGroupConfig() {
  const int t[4][3] = {{4, 0, 1}, {4, 0, 1}, {4, 0, 1}, {4, 0, 1}};
  return internal::MakeConfigFromTable(t);
}
inline Configuration MakeSubgroupByFriendshipConfig() {
  // {Alice, Dave}: <c5, c1, c4>; {Bob, Charlie}: <c2, c4, c3>.
  const int t[4][3] = {{4, 0, 3}, {1, 3, 2}, {1, 3, 2}, {4, 0, 3}};
  return internal::MakeConfigFromTable(t);
}
inline Configuration MakeSubgroupByPreferenceConfig() {
  // {Alice, Bob}: <c2, c1, c5>; {Charlie, Dave}: <c4, c5, c3>.
  const int t[4][3] = {{1, 0, 4}, {1, 0, 4}, {3, 4, 2}, {3, 4, 2}};
  return internal::MakeConfigFromTable(t);
}

}  // namespace savg
