// Tests of the durability stack (src/durability/): changelog framing with
// torn-tail tolerance at every byte offset, bit-exact snapshot round trips,
// crash recovery equal to uninterrupted execution (state digest + next
// resolve), snapshot-corruption fallback to the previous epoch, the
// resolve-failure transparency regression, and client reconnect-with-backoff
// across a server restart.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "durability/changelog.h"
#include "durability/recovery.h"
#include "durability/session_store.h"
#include "durability/snapshot.h"
#include "online/session.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session_command.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, double lambda,
                             uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = lambda;
  params.seed = seed;
  params.universe_users = 4 * n + 20;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    ::unlink(path.c_str());
    return;
  }
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    RemoveTree(path + "/" + name);
  }
  ::closedir(dir);
  ::rmdir(path.c_str());
}

/// A clean per-test scratch directory (stale files from a previous run
/// would read as extra epochs).
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/savg_durability_" + name;
  RemoveTree(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint64_t Digest(const Session& session) {
  return SessionStateDigest(session.CaptureState());
}

/// Deterministic mixed mutation/resolve stream (valid against an instance
/// that starts with n users and m items; joins grow n).
CommandLog BuildStream(int n, int m, int num_mutations, uint64_t seed) {
  CommandLog log;
  uint64_t s = seed;
  auto next = [&s]() {
    s += 0x9E3779B97F4A7C15ull;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  log.push_back(MakeResolve());
  for (int i = 0; i < num_mutations; ++i) {
    const uint64_t r = next();
    const double value =
        0.05 + 0.9 * static_cast<double>((r >> 32) % 1000) / 1000.0;
    switch (r % 4) {
      case 0:
        log.push_back(MakePref(static_cast<UserId>(r % n),
                               static_cast<ItemId>((r >> 8) % m), value));
        break;
      case 1: {
        UserId u = static_cast<UserId>(r % n);
        UserId v = static_cast<UserId>((r >> 8) % n);
        if (v == u) v = (v + 1) % n;
        log.push_back(
            MakeTau(u, v, static_cast<ItemId>((r >> 16) % m), value));
        break;
      }
      case 2:
        log.push_back(MakeJoin());
        ++n;
        break;
      default:
        log.push_back(MakePref(static_cast<UserId>((r >> 4) % n),
                               static_cast<ItemId>((r >> 12) % m), value));
        break;
    }
    if (i % 5 == 4) log.push_back(MakeResolve());
  }
  log.push_back(MakeResolve());
  return log;
}

/// Applies the whole stream; with a journal, snapshots whenever the policy
/// says to (what SessionManager::MaybeSnapshot does in-band).
void ApplyAll(Session* session, const CommandLog& log,
              SessionJournal* journal = nullptr) {
  for (const SessionCommand& cmd : log) {
    auto outcome = session->Apply(cmd);
    ASSERT_TRUE(outcome.ok())
        << CommandTypeName(cmd.type) << ": " << outcome.status();
    if (journal != nullptr && journal->ShouldSnapshot()) {
      Status snap = journal->TakeSnapshot(*session);
      ASSERT_TRUE(snap.ok()) << snap;
    }
  }
}

// --- Fsync policy flag parsing ---------------------------------------------

TEST(FsyncPolicyTest, ParseAndEchoRoundTrip) {
  for (const char* text :
       {"never", "command", "every:4", "interval:25", "resolve"}) {
    auto policy = ParseFsyncPolicy(text);
    ASSERT_TRUE(policy.ok()) << text;
    EXPECT_EQ(FsyncPolicyToString(*policy), text);
  }
  EXPECT_FALSE(ParseFsyncPolicy("").ok());
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_FALSE(ParseFsyncPolicy("every:").ok());
  EXPECT_FALSE(ParseFsyncPolicy("every:x").ok());
}

// --- Changelog -------------------------------------------------------------

CommandLog SampleCommands() {
  return {MakePref(1, 2, 0.25), MakeJoin(),
          MakeTau(0, 3, 1, 0.5),  MakeResolve(),
          MakeFriend(2, 4),       MakeLambda(0.75),
          MakePref(0, 0, 0.125),  MakeResolve()};
}

TEST(ChangelogTest, RoundTripPreservesEveryCommandBitExactly) {
  const std::string dir = FreshDir("changelog_roundtrip");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + ChangelogFileName(2);
  const CommandLog commands = SampleCommands();

  FsyncPolicy policy;
  policy.mode = FsyncPolicy::Mode::kNever;
  auto writer = ChangelogWriter::Create(path, /*session_id=*/3, /*epoch=*/2,
                                        /*first_seq=*/17, policy);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const SessionCommand& cmd : commands) {
    ASSERT_TRUE(
        (*writer)->Append(cmd, cmd.type == CommandType::kResolve).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  auto contents = ReadChangelogFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->session_id, 3u);
  EXPECT_EQ(contents->epoch, 2u);
  EXPECT_EQ(contents->first_seq, 17u);
  EXPECT_FALSE(contents->torn_tail);
  ASSERT_EQ(contents->commands.size(), commands.size());
  for (size_t i = 0; i < commands.size(); ++i) {
    EXPECT_EQ(contents->commands[i], commands[i]) << "command " << i;
  }
}

TEST(ChangelogTest, TornTailAtEveryByteOffsetOfTheFinalRecord) {
  const std::string dir = FreshDir("changelog_torn");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + ChangelogFileName(0);
  const CommandLog commands = SampleCommands();

  FsyncPolicy policy;
  policy.mode = FsyncPolicy::Mode::kNever;
  auto writer =
      ChangelogWriter::Create(path, 0, 0, 0, policy);
  ASSERT_TRUE(writer.ok());
  for (const SessionCommand& cmd : commands) {
    ASSERT_TRUE(
        (*writer)->Append(cmd, cmd.type == CommandType::kResolve).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  const std::string full = ReadFileBytes(path);

  // Offset where the final record begins (len + crc + payload framing).
  const size_t last_record_bytes = 8 + EncodedCommandSize(commands.back());
  ASSERT_GT(full.size(), last_record_bytes);
  const size_t last_start = full.size() - last_record_bytes;

  // Truncating exactly at the record boundary is indistinguishable from a
  // log that simply ends there: a clean read of N-1 commands, no torn tail.
  const std::string cut_path = dir + "/cut";
  WriteFileBytes(cut_path, full.substr(0, last_start));
  auto clean = ReadChangelogFile(cut_path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  EXPECT_EQ(clean->commands.size(), commands.size() - 1);

  // Every cut INSIDE the final record: the valid prefix survives intact
  // and the partial tail is reported, never an error.
  for (size_t cut = last_start + 1; cut < full.size(); ++cut) {
    WriteFileBytes(cut_path, full.substr(0, cut));
    auto torn = ReadChangelogFile(cut_path);
    ASSERT_TRUE(torn.ok()) << "cut at " << cut << ": " << torn.status();
    EXPECT_TRUE(torn->torn_tail) << "cut at " << cut;
    EXPECT_EQ(torn->valid_bytes, last_start) << "cut at " << cut;
    ASSERT_EQ(torn->commands.size(), commands.size() - 1)
        << "cut at " << cut;
    for (size_t i = 0; i + 1 < commands.size(); ++i) {
      EXPECT_EQ(torn->commands[i], commands[i]);
    }
  }

  // A cut inside the 24-byte header (crash between create and header
  // fsync): empty contents, torn tail, still not an error.
  WriteFileBytes(cut_path, full.substr(0, 10));
  auto header_torn = ReadChangelogFile(cut_path);
  ASSERT_TRUE(header_torn.ok());
  EXPECT_TRUE(header_torn->torn_tail);
  EXPECT_TRUE(header_torn->commands.empty());
}

TEST(ChangelogTest, CorruptMidFileRecordDiscardsFromThere) {
  const std::string dir = FreshDir("changelog_corrupt");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + ChangelogFileName(0);
  const CommandLog commands = SampleCommands();

  FsyncPolicy policy;
  policy.mode = FsyncPolicy::Mode::kNever;
  auto writer = ChangelogWriter::Create(path, 0, 0, 0, policy);
  ASSERT_TRUE(writer.ok());
  for (const SessionCommand& cmd : commands) {
    ASSERT_TRUE((*writer)->Append(cmd, false).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());

  // Flip a payload byte of the third record: records 0-1 must survive,
  // everything from the corrupt record on is discarded as a torn tail.
  std::string bytes = ReadFileBytes(path);
  size_t offset = 24;
  for (int i = 0; i < 2; ++i) offset += 8 + EncodedCommandSize(commands[i]);
  bytes[offset + 8] = static_cast<char>(bytes[offset + 8] ^ 0x40);
  WriteFileBytes(path, bytes);

  auto contents = ReadChangelogFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_EQ(contents->valid_bytes, offset);
  ASSERT_EQ(contents->commands.size(), 2u);
  EXPECT_EQ(contents->commands[0], commands[0]);
  EXPECT_EQ(contents->commands[1], commands[1]);
}

// --- Snapshots -------------------------------------------------------------

TEST(SnapshotTest, StateRoundTripIsBitExact) {
  Session session(RandomInstance(10, 14, 2, 0.5, 3));
  ApplyAll(&session, BuildStream(10, 14, 12, 5));

  const SessionState state = session.CaptureState();
  const uint64_t digest = SessionStateDigest(state);

  std::string encoded;
  EncodeSessionState(state, &encoded);
  auto decoded = DecodeSessionState(encoded.data(), encoded.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(SessionStateDigest(*decoded), digest);

  // FromState reproduces the full serving state, digest-identical.
  auto restored = Session::FromState(std::move(*decoded), SessionOptions{});
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(Digest(*restored), digest);
  EXPECT_EQ(restored->num_resolves(), session.num_resolves());

  // File round trip through the atomic write-rename path.
  const std::string dir = FreshDir("snapshot_roundtrip");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + SnapshotFileName(4);
  ASSERT_TRUE(WriteSnapshotFile(path, /*session_id=*/7, /*epoch=*/4,
                                /*applied_seq=*/13, state)
                  .ok());
  auto snapshot = ReadSnapshotFile(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->session_id, 7u);
  EXPECT_EQ(snapshot->epoch, 4u);
  EXPECT_EQ(snapshot->applied_seq, 13u);
  EXPECT_EQ(SessionStateDigest(snapshot->state), digest);
}

TEST(SnapshotTest, AnySingleByteCorruptionIsDetected) {
  Session session(RandomInstance(8, 10, 2, 0.5, 9));
  ASSERT_TRUE(session.Resolve().ok());
  const std::string dir = FreshDir("snapshot_corrupt");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + SnapshotFileName(0);
  ASSERT_TRUE(
      WriteSnapshotFile(path, 0, 0, 1, session.CaptureState()).ok());

  const std::string good = ReadFileBytes(path);
  ASSERT_TRUE(ReadSnapshotFile(path).ok());
  // Flip one byte at a spread of offsets covering the header (both CRCs)
  // and the payload; every corruption must be caught.
  for (size_t offset = 0; offset < good.size();
       offset += 1 + good.size() / 64) {
    std::string bad = good;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x01);
    WriteFileBytes(path, bad);
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "offset " << offset;
  }
  // Truncations fail too (the recovery manager falls back, never crashes).
  for (size_t len : {0u, 10u, 39u, 40u}) {
    if (len >= good.size()) continue;
    WriteFileBytes(path, good.substr(0, len));
    EXPECT_FALSE(ReadSnapshotFile(path).ok()) << "len " << len;
  }
}

// --- Crash recovery --------------------------------------------------------

TEST(RecoveryTest, KillAndRestoreEqualsUninterruptedExecution) {
  const std::string dir = FreshDir("recovery_bitexact");
  const SvgicInstance base = RandomInstance(12, 16, 3, 0.5, 21);
  const CommandLog log = BuildStream(12, 16, 40, 77);

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kEveryN;
  options.fsync.every_n = 1;
  options.snapshot_interval_seconds = 0;  // count trigger only
  options.snapshot_every_commands = 6;    // force many rotations
  options.keep_epochs = 2;
  SessionStore store(options);

  // The uninterrupted control and the journaled session apply the same
  // stream; the journaled one snapshots + rotates as it goes.
  Session control(base);
  auto durable = std::make_unique<Session>(base);
  auto journal = store.Attach(0, *durable);
  ASSERT_TRUE(journal.ok()) << journal.status();
  durable->set_journal(*journal);
  ApplyAll(&control, log);
  ApplyAll(durable.get(), log, *journal);
  EXPECT_EQ(Digest(*durable), Digest(control));
  EXPECT_EQ((*journal)->seq(), log.size());
  EXPECT_GT((*journal)->epoch(), 1u);  // rotations actually happened

  // "kill -9": drop the session without any flush and recover from disk.
  durable.reset();
  RecoveryManager manager(dir, SessionOptions{});
  auto recovered = manager.RecoverSession(0);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->applied_seq, log.size());
  EXPECT_FALSE(recovered->torn_tail);
  EXPECT_EQ(recovered->snapshot_fallbacks, 0);
  // The snapshot fast-path replayed only the post-snapshot tail.
  EXPECT_LT(recovered->replayed_commands, log.size());
  ASSERT_NE(recovered->session, nullptr);
  EXPECT_EQ(Digest(*recovered->session), Digest(control));

  // Bit-for-bit continuation: the same mutation + resolve on the control
  // and the recovered session must warm-start identically — same path,
  // same pivot count, same rounded configuration totals, same digest.
  auto drive = [](Session* session) {
    EXPECT_TRUE(session->Apply(MakePref(2, 3, 0.9)).ok());
    auto outcome = session->Apply(MakeResolve());
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return outcome.ok() ? outcome->report : ResolveReport{};
  };
  const ResolveReport control_report = drive(&control);
  const ResolveReport recovered_report = drive(recovered->session.get());
  EXPECT_EQ(recovered_report.path, control_report.path);
  EXPECT_NE(recovered_report.path, ResolvePath::kCold)
      << "recovery must never pay a cold solve";
  EXPECT_TRUE(recovered_report.warm_started);
  EXPECT_EQ(recovered_report.pivots, control_report.pivots);
  EXPECT_EQ(recovered_report.scaled_total, control_report.scaled_total);
  EXPECT_EQ(recovered_report.lp_objective, control_report.lp_objective);
  EXPECT_EQ(Digest(*recovered->session), Digest(control));

  // Cold replay (oldest retained snapshot, maximal replay) reaches the
  // exact same state the warm fast-path did.
  RecoveryOptions cold_options;
  cold_options.cold_replay = true;
  RecoveryManager cold_manager(dir, SessionOptions{}, cold_options);
  auto cold = cold_manager.RecoverSession(0);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_GT(cold->replayed_commands, recovered->replayed_commands);
  // Compare pre-continuation states: re-recover the warm path fresh.
  auto warm_again = manager.RecoverSession(0);
  ASSERT_TRUE(warm_again.ok());
  EXPECT_EQ(Digest(*cold->session), Digest(*warm_again->session));
}

TEST(RecoveryTest, TornTailDropsOnlyTheTruncatedCommand) {
  const std::string dir = FreshDir("recovery_torn");
  const SvgicInstance base = RandomInstance(10, 14, 2, 0.5, 23);
  CommandLog log = BuildStream(10, 14, 15, 31);
  log.push_back(MakePref(4, 5, 0.5));  // the command the crash will tear

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kEveryN;
  options.fsync.every_n = 1;
  options.snapshot_interval_seconds = 0;
  options.snapshot_every_commands = 0;  // single epoch, no rotation
  SessionStore store(options);

  auto durable = std::make_unique<Session>(base);
  auto journal = store.Attach(0, *durable);
  ASSERT_TRUE(journal.ok());
  durable->set_journal(*journal);
  ApplyAll(durable.get(), log, *journal);
  const std::string changelog_path =
      store.SessionDir(0) + "/" + ChangelogFileName(0);
  durable.reset();

  // Tear the final record mid-payload, as a crash mid-append would.
  std::string bytes = ReadFileBytes(changelog_path);
  WriteFileBytes(changelog_path, bytes.substr(0, bytes.size() - 3));

  RecoveryManager manager(dir, SessionOptions{});
  auto recovered = manager.RecoverSession(0);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->applied_seq, log.size() - 1);

  // The recovered state equals a control that never saw the torn command.
  Session control(base);
  CommandLog prefix(log.begin(), log.end() - 1);
  ApplyAll(&control, prefix);
  EXPECT_EQ(Digest(*recovered->session), Digest(control));
}

TEST(RecoveryTest, CorruptNewestSnapshotFallsBackToPreviousEpoch) {
  const std::string dir = FreshDir("recovery_fallback");
  const SvgicInstance base = RandomInstance(10, 14, 2, 0.5, 25);
  const CommandLog log = BuildStream(10, 14, 30, 41);

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kNever;
  options.snapshot_interval_seconds = 0;
  options.snapshot_every_commands = 5;
  options.keep_epochs = 2;
  SessionStore store(options);

  Session control(base);
  auto durable = std::make_unique<Session>(base);
  auto journal = store.Attach(0, *durable);
  ASSERT_TRUE(journal.ok());
  durable->set_journal(*journal);
  ApplyAll(&control, log);
  ApplyAll(durable.get(), log, *journal);
  const uint32_t newest_epoch = (*journal)->epoch();
  ASSERT_GT(newest_epoch, 1u);
  durable.reset();

  RecoveryManager manager(dir, SessionOptions{});
  auto baseline = manager.RecoverSession(0);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->snapshot_fallbacks, 0);

  // Corrupt the newest snapshot: recovery must fall back one epoch and
  // pay a longer replay, landing on the identical state.
  const std::string newest_path =
      store.SessionDir(0) + "/" + SnapshotFileName(newest_epoch);
  std::string bytes = ReadFileBytes(newest_path);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  WriteFileBytes(newest_path, bytes);

  auto recovered = manager.RecoverSession(0);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->snapshot_fallbacks, 1);
  EXPECT_LT(recovered->snapshot_epoch, newest_epoch);
  EXPECT_GT(recovered->replayed_commands, baseline->replayed_commands);
  EXPECT_EQ(recovered->applied_seq, log.size());
  EXPECT_EQ(Digest(*recovered->session), Digest(control));

  // With every retained snapshot corrupt, recovery must fail cleanly.
  const std::string previous_path =
      store.SessionDir(0) + "/" + SnapshotFileName(recovered->snapshot_epoch);
  std::string previous = ReadFileBytes(previous_path);
  previous[previous.size() / 2] =
      static_cast<char>(previous[previous.size() / 2] ^ 0x20);
  WriteFileBytes(previous_path, previous);
  EXPECT_FALSE(manager.RecoverSession(0).ok());
}

TEST(RecoveryTest, RecoversWhenOldestRetainedEpochIsHigh) {
  const std::string dir = FreshDir("recovery_high_epoch");
  const SvgicInstance base = RandomInstance(10, 14, 2, 0.5, 29);
  const CommandLog log = BuildStream(10, 14, 25, 83);

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kNever;
  options.snapshot_interval_seconds = 0;
  options.snapshot_every_commands = 6;
  options.keep_epochs = 2;
  SessionStore store(options);

  // A long-lived session: pruning deleted every epoch below 4096, so the
  // oldest file on disk has a high epoch number (regression: the old
  // recovery scan probed epoch numbers from 0 and gave up after 1024
  // consecutive misses, reporting "no snapshots" for exactly this layout).
  Session control(base);
  auto durable = std::make_unique<Session>(base);
  auto journal =
      store.Attach(0, *durable, /*epoch=*/4096, /*applied_seq=*/0);
  ASSERT_TRUE(journal.ok()) << journal.status();
  durable->set_journal(*journal);
  ApplyAll(&control, log);
  ApplyAll(durable.get(), log, *journal);
  EXPECT_GT((*journal)->epoch(), 4096u);
  durable.reset();

  RecoveryManager manager(dir, SessionOptions{});
  auto recovered = manager.RecoverSession(0);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GE(recovered->snapshot_epoch, 4096u);
  EXPECT_EQ(recovered->last_epoch, (*journal)->epoch());
  EXPECT_EQ(recovered->applied_seq, log.size());
  EXPECT_EQ(Digest(*recovered->session), Digest(control));
}

// --- Journal fail-stop -----------------------------------------------------

TEST(SessionStoreTest, FreshAttachRefusesExistingDurableState) {
  const std::string dir = FreshDir("attach_guard");
  const SvgicInstance base = RandomInstance(8, 12, 2, 0.5, 71);

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kNever;
  {
    SessionStore store(options);
    Session session(base);
    auto journal = store.Attach(0, session);
    ASSERT_TRUE(journal.ok()) << journal.status();
    session.set_journal(*journal);
    ASSERT_TRUE(session.Apply(MakePref(0, 1, 0.5)).ok());
  }

  // A second run that skips recovery must not truncate the previous run's
  // snapshot/changelog pair.
  SessionStore store(options);
  Session fresh(base);
  auto refused = store.Attach(0, fresh);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // Recovery-style re-attach (epoch > 0) and the explicit overwrite flag
  // both stay allowed.
  auto readopt = store.Attach(0, fresh, /*epoch=*/1, /*applied_seq=*/1);
  EXPECT_TRUE(readopt.ok()) << readopt.status();
  DurabilityOptions overwrite = options;
  overwrite.overwrite_existing_on_attach = true;
  SessionStore overwriting_store(overwrite);
  auto allowed = overwriting_store.Attach(0, fresh);
  EXPECT_TRUE(allowed.ok()) << allowed.status();
}

TEST(SessionStoreTest, FailedRotationFailStopsSessionUntilRetrySucceeds) {
  const std::string dir = FreshDir("rotation_failstop");
  const SvgicInstance base = RandomInstance(10, 14, 2, 0.5, 31);

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kNever;
  options.snapshot_interval_seconds = 0;
  options.snapshot_every_commands = 0;  // snapshots only when forced
  SessionStore store(options);

  Session session(base);
  auto journal = store.Attach(0, session);
  ASSERT_TRUE(journal.ok()) << journal.status();
  session.set_journal(*journal);
  ASSERT_TRUE(session.Apply(MakePref(0, 1, 0.5)).ok());
  ASSERT_TRUE(session.Apply(MakeResolve()).ok());

  // Injected rotation failure: a directory squats on the next epoch's
  // changelog path, so ChangelogWriter::Create cannot open it.
  const std::string blocker =
      store.SessionDir(0) + "/" + ChangelogFileName(1);
  ASSERT_TRUE(EnsureDirectory(blocker).ok());
  const Status failed = (*journal)->TakeSnapshot(session);
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE((*journal)->healthy());
  EXPECT_TRUE((*journal)->ShouldSnapshot());  // demands the re-anchor retry

  // The fail-stopped session refuses commands before mutating anything.
  const uint64_t digest = Digest(session);
  auto refused = session.Apply(MakePref(1, 2, 0.7));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Digest(session), digest);

  // Clearing the fault, the retry (MaybeSnapshot's next run in the server)
  // re-anchors a clean epoch: health returns and commands flow again.
  ::rmdir(blocker.c_str());
  ASSERT_TRUE((*journal)->TakeSnapshot(session).ok());
  EXPECT_TRUE((*journal)->healthy());
  ASSERT_TRUE(session.Apply(MakePref(1, 2, 0.7)).ok());

  // Recovery sees a consistent store.
  RecoveryManager manager(dir, SessionOptions{});
  auto recovered = manager.RecoverSession(0);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(Digest(*recovered->session), Digest(session));
}

/// CommandJournal with an injectable append failure (what a full disk does
/// to SessionJournal::Append).
class InjectedFailureJournal : public CommandJournal {
 public:
  Status Append(const SessionCommand&, bool) override {
    if (fail_next) {
      is_healthy = false;
      return Status::Unknown("injected append failure");
    }
    return Status::OK();
  }
  bool healthy() const override { return is_healthy; }

  bool fail_next = false;
  bool is_healthy = true;
};

TEST(SessionFailStopTest, UnhealthyJournalRefusesCommandsBeforeMutation) {
  const SvgicInstance base = RandomInstance(8, 12, 2, 0.5, 37);
  Session session(base);
  InjectedFailureJournal journal;
  session.set_journal(&journal);
  ASSERT_TRUE(session.Apply(MakePref(0, 1, 0.5)).ok());

  // The append failure surfaces as the command's status; the mutation it
  // described is applied but un-journaled.
  journal.fail_next = true;
  auto failed = session.Apply(MakePref(1, 2, 0.6));
  ASSERT_FALSE(failed.ok());

  // Every later command is refused BEFORE mutating — even though the
  // writer would now accept appends — so the replay gap stays one record
  // wide until a snapshot re-anchors.
  const uint64_t digest = Digest(session);
  journal.fail_next = false;
  auto refused = session.Apply(MakePref(2, 3, 0.7));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Digest(session), digest);

  // A snapshot re-anchor (simulated) restores service.
  journal.is_healthy = true;
  EXPECT_TRUE(session.Apply(MakePref(2, 3, 0.7)).ok());
}

// --- Resolve-failure transparency (regression) -----------------------------

TEST(RecoveryTest, FailedResolveLeavesServedStateAndJournalUntouched) {
  const std::string dir = FreshDir("resolve_failure");
  const SvgicInstance base = RandomInstance(10, 14, 2, 0.5, 27);

  DurabilityOptions options;
  options.data_dir = dir;
  options.fsync.mode = FsyncPolicy::Mode::kNever;
  options.snapshot_interval_seconds = 0;
  options.snapshot_every_commands = 0;
  SessionStore store(options);

  Session control(base);
  Session session(base);
  auto journal = store.Attach(0, session);
  ASSERT_TRUE(journal.ok());
  session.set_journal(*journal);

  for (Session* s : {&control, &session}) {
    ASSERT_TRUE(s->Apply(MakeResolve()).ok());
    ASSERT_TRUE(s->Apply(MakePref(1, 2, 0.8)).ok());
    ASSERT_TRUE(s->Apply(MakeTau(0, 3, 1, 0.6)).ok());
  }
  const uint64_t digest_before = Digest(session);
  const uint64_t seq_before = (*journal)->seq();

  // Injected LP failure: with one simplex iteration the re-solve cannot
  // finish. The served configuration, basis, RNG, dirty flags and the
  // journal must all come through untouched.
  session.set_max_lp_iterations(1);
  auto failed = session.Apply(MakeResolve());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Digest(session), digest_before);
  EXPECT_EQ((*journal)->seq(), seq_before);  // failures are never journaled

  // Lifting the limit, the session resumes exactly where the control is:
  // same resolve outcome, same state.
  session.set_max_lp_iterations(SimplexOptions{}.max_iterations);
  auto after = session.Apply(MakeResolve());
  auto control_after = control.Apply(MakeResolve());
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_TRUE(control_after.ok());
  EXPECT_EQ(after->report.pivots, control_after->report.pivots);
  EXPECT_EQ(after->report.scaled_total, control_after->report.scaled_total);
  EXPECT_EQ(Digest(session), Digest(control));
}

// --- Client retry ----------------------------------------------------------

TEST(ClientRetryTest, ReconnectsAcrossServerRestart) {
  const SvgicInstance base = RandomInstance(8, 12, 2, 0.5, 61);
  ServerOptions options;
  options.num_workers = 1;
  std::optional<ServeServer> server;
  server.emplace(options);
  const int session = server->CreateSession(base);
  ASSERT_TRUE(server->Start().ok());
  const int port = server->port();

  ClientRetryOptions retry;
  retry.max_retries = 8;
  retry.initial_backoff_ms = 1.0;
  retry.max_backoff_ms = 20.0;
  MetricsRegistry metrics;
  ServeClient client(retry, &metrics);
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  auto first = client.Apply(session, MakePref(0, 1, 0.7));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->kind, FrameKind::kOk);
  EXPECT_EQ(client.retries(), 0u);

  // Restart the server on the same port; the old connection is dead, so
  // the next Apply must reconnect under the hood and still succeed.
  server->Shutdown();
  server.reset();
  ServerOptions restart_options = options;
  restart_options.port = port;
  server.emplace(restart_options);
  const int session2 = server->CreateSession(base);
  ASSERT_TRUE(server->Start().ok());
  ASSERT_EQ(server->port(), port);

  auto second = client.Apply(session2, MakePref(1, 2, 0.6));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->kind, FrameKind::kOk);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(metrics.GetCounter("serve.client.retries")->value(), 1);
  server->Shutdown();
}

TEST(ClientRetryTest, ExhaustsItsBudgetWhenTheServerStaysDown) {
  ServerOptions options;
  options.num_workers = 1;
  auto server = std::make_unique<ServeServer>(options);
  const int session = server->CreateSession(RandomInstance(8, 12, 2, 0.5, 63));
  ASSERT_TRUE(server->Start().ok());

  ClientRetryOptions retry;
  retry.max_retries = 2;
  retry.initial_backoff_ms = 1.0;
  ServeClient client(retry);
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(client.Apply(session, MakePref(0, 0, 0.5)).ok());

  server->Shutdown();
  server.reset();  // nothing listens on the port anymore

  auto failed = client.Apply(session, MakePref(0, 1, 0.5));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(client.retries(), 2u);  // exactly the configured budget
}

// --- End-to-end server restart ---------------------------------------------

TEST(ServeDurabilityTest, GracefulRestartRecoversEverySession) {
  const std::string dir = FreshDir("serve_restart");
  const SvgicInstance base = RandomInstance(10, 16, 3, 0.5, 65);

  ServerOptions options;
  options.num_workers = 2;
  options.durability.data_dir = dir;
  options.durability.snapshot_every_commands = 4;
  options.durability.snapshot_interval_seconds = 0;

  uint64_t digest_before = 0;
  int port = 0;
  {
    ServeServer server(options);
    const int a = server.CreateSession(base);
    server.CreateSession(RandomInstance(8, 12, 2, 0.5, 66));
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(
            client.Apply(a, MakePref((round + i) % 10, i % 16, 0.6)).ok());
      }
      ASSERT_TRUE(client.Apply(a, MakeResolve()).ok());
    }
    server.manager().Drain();
    digest_before = Digest(server.manager().session(a));
    server.Shutdown();  // graceful: flushes + final snapshot per session
  }

  ServeServer restarted(options);
  ASSERT_TRUE(RecoveryManager::HasSessions(dir));
  auto recovered = restarted.RecoverSessions();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(*recovered, 2);
  EXPECT_EQ(Digest(restarted.manager().session(0)), digest_before);
  EXPECT_GT(restarted.metrics().GetCounter("durability.recoveries")->value(),
            0);

  // The recovered server keeps serving: the next resolve over the wire
  // warm-starts from the snapshotted basis.
  ASSERT_TRUE(restarted.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", restarted.port()).ok());
  auto resolve = client.Apply(0, MakeResolve());
  ASSERT_TRUE(resolve.ok()) << resolve.status();
  EXPECT_EQ(resolve->kind, FrameKind::kOk);
  restarted.Shutdown();
}

}  // namespace
}  // namespace savg
