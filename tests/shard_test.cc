// Tests of the sharded solve subsystem (src/shard/): plan determinism and
// sanity, the dual-coordination equivalence guarantee (AVG-SHARD's
// stitched relaxation within the reported gap of the monolithic compact
// LP), worker-count determinism, and the sharded serving path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "online/session.h"
#include "shard/shard_plan.h"
#include "shard/shard_solve.h"
#include "solvers/solver_options.h"
#include "solvers/solver_registry.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(DatasetKind kind, int n, int m, int k,
                             uint64_t seed) {
  DatasetParams params;
  params.kind = kind;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = 0.5;
  params.seed = seed;
  params.universe_users = 4 * n + 20;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

bool SamePlan(const ShardPlan& a, const ShardPlan& b) {
  return a.shard_of == b.shard_of && a.users == b.users &&
         a.cut_pairs == b.cut_pairs;
}

bool SameConfig(const Configuration& a, const Configuration& b) {
  if (a.num_users() != b.num_users() || a.num_slots() != b.num_slots()) {
    return false;
  }
  for (UserId u = 0; u < a.num_users(); ++u) {
    for (SlotId s = 0; s < a.num_slots(); ++s) {
      if (a.At(u, s) != b.At(u, s)) return false;
    }
  }
  return true;
}

TEST(ShardPlanTest, DeterministicForFixedSeed) {
  const SvgicInstance inst = RandomInstance(DatasetKind::kYelp, 48, 24, 3, 5);
  for (ShardMethod method :
       {ShardMethod::kCommunity, ShardMethod::kBalanced}) {
    ShardPlanOptions options;
    options.num_shards = 4;
    options.method = method;
    options.seed = 11;
    const ShardPlan a = BuildShardPlan(inst, options);
    const ShardPlan b = BuildShardPlan(inst, options);
    EXPECT_TRUE(SamePlan(a, b));
  }
}

TEST(ShardPlanTest, CoversAllUsersAndClassifiesCutPairs) {
  const SvgicInstance inst = RandomInstance(DatasetKind::kTimik, 40, 20, 3, 3);
  ShardPlanOptions options;
  options.num_shards = 4;
  const ShardPlan plan = BuildShardPlan(inst, options);
  ASSERT_EQ(static_cast<int>(plan.shard_of.size()), inst.num_users());
  std::vector<int> seen(inst.num_users(), 0);
  for (int s = 0; s < plan.num_shards(); ++s) {
    for (UserId u : plan.users[s]) {
      EXPECT_EQ(plan.shard_of[u], s);
      ++seen[u];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int count) { return count == 1; }));
  // Every weighted pair is either intra-shard or listed as cut.
  std::vector<char> is_cut(inst.pairs().size(), 0);
  for (int pi : plan.cut_pairs) is_cut[pi] = 1;
  for (size_t pi = 0; pi < inst.pairs().size(); ++pi) {
    const FriendPair& pair = inst.pairs()[pi];
    if (pair.weights.empty()) continue;
    const bool crossing = plan.shard_of[pair.u] != plan.shard_of[pair.v];
    EXPECT_EQ(crossing, static_cast<bool>(is_cut[pi]));
    if (crossing) {
      EXPECT_TRUE(plan.boundary[pair.u]);
      EXPECT_TRUE(plan.boundary[pair.v]);
    }
  }
  EXPECT_GT(plan.stats.max_size, 0);
  EXPECT_LE(plan.stats.min_size, plan.stats.max_size);
}

TEST(ShardPlanTest, AbsorbNewUsersKeepsShardsBalanced) {
  const SvgicInstance inst = RandomInstance(DatasetKind::kYelp, 30, 16, 3, 9);
  ShardPlanOptions options;
  options.num_shards = 3;
  ShardPlan plan = BuildShardPlan(inst, options);
  const std::vector<int> grown = plan.AbsorbNewUsers(36);
  EXPECT_FALSE(grown.empty());
  EXPECT_EQ(static_cast<int>(plan.shard_of.size()), 36);
  int total = 0;
  for (const auto& members : plan.users) {
    total += static_cast<int>(members.size());
  }
  EXPECT_EQ(total, 36);
}

// The rigorous equivalence property: with exact per-shard solves, the dual
// bound D dominates the monolithic compact-LP optimum, the stitched primal
// P is feasible (P <= OPT), and the coordinator stops with
// (D - P)/max(1, D) <= gap. Hence P is within `gap` of OPT:
//   (OPT - P) / OPT <= (D - P) / OPT ~ gap.
TEST(ShardSolveTest, StitchedRelaxationWithinGapOfMonolithicLp) {
  for (uint64_t seed : {2, 5, 8}) {
    const SvgicInstance inst =
        RandomInstance(DatasetKind::kYelp, 32, 16, 3, seed);
    RelaxationOptions exact;
    exact.method = RelaxationMethod::kSimplex;
    auto mono = SolveRelaxation(inst, exact);
    ASSERT_TRUE(mono.ok()) << mono.status();

    ShardSolveOptions options;
    options.plan.num_shards = 4;
    options.relaxation.method = RelaxationMethod::kSimplex;
    options.gap_tolerance = 0.01;
    options.max_dual_rounds = 30;
    auto sharded = SolveSharded(inst, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    const ShardSolveStats& stats = sharded->stats;

    constexpr double kEps = 1e-6;
    EXPECT_GE(stats.dual_bound, mono->lp_objective - kEps) << "seed " << seed;
    EXPECT_LE(stats.primal_objective, mono->lp_objective + kEps)
        << "seed " << seed;
    EXPECT_GE(stats.primal_objective,
              (1.0 - stats.gap) * mono->lp_objective - kEps)
        << "seed " << seed << " gap " << stats.gap;
    EXPECT_TRUE(sharded->config.IsComplete());
    EXPECT_TRUE(sharded->config.CheckValid().ok());
  }
}

// End-to-end: AVG-SHARD's rounded objective stays close to monolithic
// AVG's on random instances (both are randomized roundings of
// near-identical relaxations, so a generous band guards against seed
// variance, not against systematic loss).
TEST(ShardSolveTest, RoundedObjectiveCloseToMonolithicAvg) {
  auto avg = SolverRegistry::Global().Find("AVG");
  auto avg_shard = SolverRegistry::Global().Find("AVG-SHARD");
  ASSERT_TRUE(avg.ok());
  ASSERT_TRUE(avg_shard.ok());
  SolverOptions options;
  options.shard.plan.num_shards = 3;
  for (uint64_t seed : {3, 7}) {
    const SvgicInstance inst =
        RandomInstance(DatasetKind::kYelp, 30, 18, 3, seed);
    SolverContext context;
    context.options = &options;
    context.seed = 1000 + seed;
    auto mono = (*avg)->Solve(inst, context);
    auto sharded = (*avg_shard)->Solve(inst, context);
    ASSERT_TRUE(mono.ok()) << mono.status();
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_GE(sharded->scaled_total, 0.92 * mono->scaled_total)
        << "seed " << seed;
  }
}

TEST(ShardSolveTest, BitIdenticalAcrossWorkerCounts) {
  const SvgicInstance inst = RandomInstance(DatasetKind::kTimik, 36, 20, 3, 4);
  ShardSolveOptions options;
  options.plan.num_shards = 4;
  options.seed = 21;
  ShardSolveResult reference;
  for (int workers : {1, 2, 4}) {
    options.num_workers = workers;
    auto result = SolveSharded(inst, options);
    ASSERT_TRUE(result.ok()) << result.status();
    if (workers == 1) {
      reference = std::move(result).value();
      continue;
    }
    EXPECT_TRUE(SameConfig(reference.config, result->config))
        << "workers=" << workers;
    ASSERT_EQ(reference.frac.x.size(), result->frac.x.size());
    for (size_t i = 0; i < reference.frac.x.size(); ++i) {
      ASSERT_EQ(reference.frac.x[i], result->frac.x[i]) << "x[" << i << "]";
    }
  }
}

// Regression: a shape change (user joined) rebuilds the stitched x
// buffer, and only dirty shards re-solve afterwards — the clean shards'
// cached rows must be re-stitched, not silently zeroed.
TEST(ShardSolveTest, RefreshPreservesCleanShardRowsAcrossReshape) {
  SvgicInstance inst = RandomInstance(DatasetKind::kYelp, 30, 16, 3, 12);
  ShardSolveOptions options;
  options.plan.num_shards = 3;
  ShardCoordinator coordinator(&inst, options);
  ASSERT_TRUE(coordinator.Build().ok());
  ThreadPool pool(2);
  ShardSolveStats stats;
  ASSERT_TRUE(coordinator.SolveFractional(&pool, &stats).ok());

  const std::vector<double> before = coordinator.frac().x;

  const UserId joined = inst.AddUser();
  inst.set_p(joined, 0, 0.9);
  inst.RefinalizePairs({joined});
  ASSERT_TRUE(coordinator.Refresh({joined}).ok());
  ShardSolveStats stats2;
  ASSERT_TRUE(coordinator.SolveFractional(&pool, &stats2).ok());
  EXPECT_LT(stats2.dirty_shards, 3);
  const FractionalSolution& frac = coordinator.frac();
  ASSERT_EQ(frac.num_users, 31);
  // Users of shards that did not re-solve must keep their exact rows
  // (the bug zeroed them when the stitched buffer was re-shaped).
  std::vector<char> resolved(coordinator.num_shards(), 0);
  for (int s : coordinator.LastResolvedShards()) resolved[s] = 1;
  int untouched_users = 0;
  const int m = frac.num_items;
  for (UserId u = 0; u < 30; ++u) {
    if (resolved[coordinator.plan().shard_of[u]]) continue;
    ++untouched_users;
    for (ItemId c = 0; c < m; ++c) {
      ASSERT_EQ(frac.XCompact(u, c), before[static_cast<size_t>(u) * m + c])
          << "user " << u;
    }
  }
  EXPECT_GT(untouched_users, 0);
}

TEST(ShardSolveTest, RejectsLambdaEndpoints) {
  SvgicInstance inst = RandomInstance(DatasetKind::kYelp, 12, 8, 2, 2);
  inst.set_lambda(1.0);
  ShardSolveOptions options;
  auto result = SolveSharded(inst, options);
  EXPECT_FALSE(result.ok());
}

// The AVG-SHARD adapter must still serve the lambda endpoints (it falls
// back to the monolithic AVG pipeline there).
TEST(ShardSolveTest, AdapterFallsBackAtLambdaOne) {
  SvgicInstance inst = RandomInstance(DatasetKind::kYelp, 12, 8, 2, 2);
  inst.set_lambda(1.0);
  auto solver = SolverRegistry::Global().Find("AVG-SHARD");
  ASSERT_TRUE(solver.ok());
  auto run = (*solver)->Solve(inst, SolverContext{});
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->config.IsComplete());
}

TEST(ShardedSessionTest, OnlyDirtyShardsResolve) {
  SessionOptions options;
  options.use_sharding = true;
  options.sharding.plan.num_shards = 4;
  options.seed = 13;
  Session session(RandomInstance(DatasetKind::kYelp, 40, 20, 3, 6), options);
  auto first = session.Resolve();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->path, ResolvePath::kCold);
  EXPECT_EQ(first->num_shards, 4);
  EXPECT_EQ(first->num_dirty_shards, 4);
  EXPECT_TRUE(session.config().IsComplete());
  EXPECT_TRUE(session.config().CheckValid().ok());

  // One user's preference change must touch exactly one shard.
  ASSERT_TRUE(session.PreferenceDelta(3, 5, 0.9).ok());
  auto second = session.Resolve();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->path, ResolvePath::kIncremental);
  EXPECT_EQ(second->num_dirty_shards, 1);
  EXPECT_LT(second->rerounded_units,
            session.instance().num_users() * session.instance().num_slots());
  EXPECT_TRUE(session.config().IsComplete());
  EXPECT_GT(second->scaled_total, 0.0);
}

TEST(ShardedSessionTest, ReplayIsIdenticalAcrossWorkerCounts) {
  const SvgicInstance base = RandomInstance(DatasetKind::kYelp, 32, 16, 3, 8);
  auto replay = [&](int workers) {
    SessionOptions options;
    options.use_sharding = true;
    options.sharding.plan.num_shards = 4;
    options.sharding.num_workers = workers;
    options.seed = 77;
    Session session(base, options);
    EXPECT_TRUE(session.Resolve().ok());
    EXPECT_TRUE(session.PreferenceDelta(1, 2, 0.8).ok());
    EXPECT_TRUE(session.TauDelta(0, 9, 3, 0.6).ok());
    EXPECT_TRUE(session.Resolve().ok());
    EXPECT_TRUE(session.UserJoined().ok());
    EXPECT_TRUE(session.PreferenceDelta(32, 1, 0.7).ok());
    EXPECT_TRUE(session.Resolve().ok());
    return session.config();
  };
  const Configuration serial = replay(1);
  const Configuration parallel = replay(4);
  EXPECT_TRUE(SameConfig(serial, parallel));
}

TEST(ShardedSessionTest, StructuralMutationsStayConsistent) {
  SessionOptions options;
  options.use_sharding = true;
  options.sharding.plan.num_shards = 3;
  Session session(RandomInstance(DatasetKind::kTimik, 24, 12, 3, 10),
                  options);
  ASSERT_TRUE(session.Resolve().ok());
  // Join, befriend across shards, retire an item, add one — each resolve
  // must stay complete and valid.
  auto joined = session.UserJoined();
  ASSERT_TRUE(joined.ok());
  ASSERT_TRUE(session.PreferenceDelta(*joined, 0, 0.5).ok());
  ASSERT_TRUE(session.TauDelta(*joined, 0, 1, 0.4).ok());
  auto report = session.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(session.config().IsComplete());

  ASSERT_TRUE(session.ItemRetired(2).ok());
  const ItemId added = session.ItemAdded();
  ASSERT_TRUE(session.PreferenceDelta(3, added, 0.9).ok());
  report = session.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(session.config().IsComplete());
  EXPECT_TRUE(session.config().CheckValid().ok());
  EXPECT_GT(report->scaled_total, 0.0);
}

}  // namespace
}  // namespace savg
