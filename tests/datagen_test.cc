#include <gtest/gtest.h>

#include <set>
#include <cmath>

#include "datagen/datasets.h"
#include "datagen/user_study.h"
#include "datagen/utility_model.h"
#include "graph/generators.h"

namespace savg {
namespace {

TEST(UtilityModelTest, PopulatesValidInstance) {
  Rng rng(3);
  SocialGraph g = ErdosRenyi(12, 0.3, &rng);
  SvgicInstance inst(g, 40, 5, 0.5);
  UtilityModelParams params;
  params.pref_pool = 10;
  params.tau_pool = 8;
  PopulateUtilities(&inst, {}, params, &rng);
  EXPECT_TRUE(inst.Validate().ok()) << inst.Validate();
}

TEST(UtilityModelTest, PrefPoolSparsifiesPreferences) {
  Rng rng(5);
  SocialGraph g(6);
  SvgicInstance inst(g, 50, 3, 0.5);
  UtilityModelParams params;
  params.pref_pool = 7;
  PopulateUtilities(&inst, {}, params, &rng);
  for (UserId u = 0; u < 6; ++u) {
    int nonzero = 0;
    for (ItemId c = 0; c < 50; ++c) {
      if (inst.p(u, c) > 0.0) ++nonzero;
    }
    EXPECT_LE(nonzero, 7);
  }
}

TEST(UtilityModelTest, CommunityCorrelatesPreferences) {
  // Users in one community must be more preference-similar than users
  // across communities.
  Rng rng(7);
  SocialGraph g(20);
  SvgicInstance inst(g, 60, 3, 0.5);
  std::vector<int> community(20);
  for (int i = 0; i < 20; ++i) community[i] = i < 10 ? 0 : 1;
  UtilityModelParams params;
  params.community_mixing = 1.2;
  params.popularity_boost = 0.1;
  params.pref_pool = 0;
  PopulateUtilities(&inst, community, params, &rng);
  auto similarity = [&](UserId a, UserId b) {
    double dot = 0, na = 0, nb = 0;
    for (ItemId c = 0; c < 60; ++c) {
      dot += inst.p(a, c) * inst.p(b, c);
      na += inst.p(a, c) * inst.p(a, c);
      nb += inst.p(b, c) * inst.p(b, c);
    }
    return dot / std::sqrt(na * nb);
  };
  double intra = 0, inter = 0;
  int ni = 0, nx = 0;
  for (UserId a = 0; a < 20; ++a) {
    for (UserId b = a + 1; b < 20; ++b) {
      if (community[a] == community[b]) {
        intra += similarity(a, b);
        ++ni;
      } else {
        inter += similarity(a, b);
        ++nx;
      }
    }
  }
  EXPECT_GT(intra / ni, inter / nx);
}

TEST(UtilityModelTest, AgreeHasUniformInfluenceGreeVariesPerTriple) {
  Rng rng1(11), rng2(11);
  SocialGraph g = CompleteGraph(6);
  SvgicInstance agree(g, 30, 3, 0.5), gree(g, 30, 3, 0.5);
  UtilityModelParams pa;
  pa.kind = UtilityModelKind::kAgree;
  pa.tau_pool = 0;
  PopulateUtilities(&agree, {}, pa, &rng1);
  UtilityModelParams pg;
  pg.kind = UtilityModelKind::kGree;
  pg.tau_pool = 0;
  PopulateUtilities(&gree, {}, pg, &rng2);
  EXPECT_TRUE(agree.Validate().ok());
  EXPECT_TRUE(gree.Validate().ok());
  // Same construction except the influence model; both nonempty.
  int agree_entries = 0, gree_entries = 0;
  for (const FriendPair& pair : agree.pairs()) {
    agree_entries += static_cast<int>(pair.weights.size());
  }
  for (const FriendPair& pair : gree.pairs()) {
    gree_entries += static_cast<int>(pair.weights.size());
  }
  EXPECT_GT(agree_entries, 0);
  EXPECT_GT(gree_entries, 0);
}

TEST(DatasetsTest, GeneratesAllKindsValid) {
  for (DatasetKind kind :
       {DatasetKind::kTimik, DatasetKind::kEpinions, DatasetKind::kYelp}) {
    DatasetParams params;
    params.kind = kind;
    params.num_users = 20;
    params.num_items = 60;
    params.num_slots = 5;
    params.seed = 13;
    auto inst = GenerateDataset(params);
    ASSERT_TRUE(inst.ok()) << inst.status();
    EXPECT_EQ(inst->num_users(), 20);
    EXPECT_EQ(inst->num_items(), 60);
    EXPECT_GT(inst->pairs().size(), 0u) << DatasetKindName(kind);
  }
}

TEST(DatasetsTest, DeterministicForSeed) {
  DatasetParams params;
  params.num_users = 10;
  params.num_items = 30;
  params.num_slots = 3;
  params.seed = 77;
  auto a = GenerateDataset(params);
  auto b = GenerateDataset(params);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph().num_edges(), b->graph().num_edges());
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId c = 0; c < 30; ++c) {
      EXPECT_DOUBLE_EQ(a->p(u, c), b->p(u, c));
    }
  }
}

TEST(DatasetsTest, TimikDenserThanEpinions) {
  double timik_density = 0.0, epinions_density = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DatasetParams params;
    params.num_users = 30;
    params.num_items = 40;
    params.num_slots = 4;
    params.seed = seed;
    params.kind = DatasetKind::kTimik;
    auto t = GenerateDataset(params);
    ASSERT_TRUE(t.ok());
    timik_density += t->graph().UndirectedDensity();
    params.kind = DatasetKind::kEpinions;
    auto e = GenerateDataset(params);
    ASSERT_TRUE(e.ok());
    epinions_density += e->graph().UndirectedDensity();
  }
  EXPECT_GT(timik_density, epinions_density);
}

TEST(DatasetsTest, RejectsBadDimensions) {
  DatasetParams params;
  params.num_items = 2;
  params.num_slots = 5;
  EXPECT_FALSE(GenerateDataset(params).ok());
}

TEST(UserStudyTest, ProducesCoherentStudy) {
  UserStudyParams params;
  params.num_participants = 20;  // smaller cohort for test speed
  params.num_items = 80;
  params.num_slots = 5;
  params.seed = 5;
  auto study = RunUserStudy(params);
  ASSERT_TRUE(study.ok()) << study.status();
  ASSERT_EQ(study->lambdas.size(), 20u);
  for (double l : study->lambdas) {
    EXPECT_GE(l, 0.15);
    EXPECT_LE(l, 0.85);
  }
  ASSERT_EQ(study->methods.size(), 4u);
  // Utility-satisfaction correlation should be strongly positive (the
  // paper reports ~0.83/0.81).
  EXPECT_GT(study->spearman, 0.5);
  EXPECT_GT(study->pearson, 0.5);
  // AVG wins the study on total utility and satisfaction.
  const auto& avg = study->methods[0];
  EXPECT_EQ(avg.method, "AVG");
  for (size_t i = 1; i < study->methods.size(); ++i) {
    EXPECT_GE(avg.total_savg_utility,
              study->methods[i].total_savg_utility - 1e-9)
        << study->methods[i].method;
  }
  for (const auto& rec : study->methods) {
    EXPECT_GE(rec.mean_satisfaction, 1.0);
    EXPECT_LE(rec.mean_satisfaction, 5.0);
  }
}

}  // namespace
}  // namespace savg
