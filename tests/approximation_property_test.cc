// Parameterized property sweeps over (dataset kind, n, m, k, lambda):
//  * no-duplication and completeness invariants of every algorithm,
//  * LP >= OPT >= AVG-D >= LP/4 sandwich (Theorems 4/5 + Observation 2),
//  * scaled/unscaled objective consistency,
//  * lambda-scaling invariance of AVG-D (Section 4.4): the algorithm's
//    decisions depend on lambda only through p'(u, c).

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/brute_force.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "metrics/metrics.h"

namespace savg {
namespace {

struct SweepCase {
  DatasetKind kind;
  int n;
  int m;
  int k;
  double lambda;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = DatasetKindName(c.kind);
  name += "_n" + std::to_string(c.n) + "_m" + std::to_string(c.m) + "_k" +
          std::to_string(c.k) + "_l" +
          std::to_string(static_cast<int>(c.lambda * 100)) + "_s" +
          std::to_string(c.seed);
  return name;
}

class ApproximationSweep : public testing::TestWithParam<SweepCase> {
 protected:
  SvgicInstance MakeInstance() const {
    const SweepCase& c = GetParam();
    DatasetParams params;
    params.kind = c.kind;
    params.num_users = c.n;
    params.num_items = c.m;
    params.num_slots = c.k;
    params.lambda = c.lambda;
    params.seed = c.seed;
    auto inst = GenerateDataset(params);
    EXPECT_TRUE(inst.ok()) << inst.status();
    return std::move(inst).value();
  }
};

TEST_P(ApproximationSweep, AvgDSandwich) {
  SvgicInstance inst = MakeInstance();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok()) << frac.status();
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok()) << avg_d.status();
  ASSERT_TRUE(avg_d->config.CheckValid().ok());
  const double value = Evaluate(inst, avg_d->config).ScaledTotal();
  // Lower side of the sandwich: the 4-approximation bound (vs the LP value,
  // which upper-bounds OPT when solved exactly; the approximate LP value is
  // itself a lower bound on the true LP optimum, making the test valid in
  // both cases).
  EXPECT_GE(value, frac->lp_objective / 4.0 - 1e-9);
  // Upper side: no algorithm may beat the exact LP bound.
  if (frac->exact) {
    EXPECT_LE(value, frac->lp_objective + 1e-6 * (1 + frac->lp_objective));
  }
}

TEST_P(ApproximationSweep, AvgExpectationAboveQuarterBound) {
  SvgicInstance inst = MakeInstance();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  double mean = 0.0;
  const int runs = 12;
  for (int i = 0; i < runs; ++i) {
    AvgOptions opt;
    opt.seed = GetParam().seed * 977 + i;
    auto avg = RunAvg(inst, *frac, opt);
    ASSERT_TRUE(avg.ok());
    ASSERT_TRUE(avg->config.CheckValid().ok());
    mean += Evaluate(inst, avg->config).ScaledTotal();
  }
  mean /= runs;
  EXPECT_GE(mean, frac->lp_objective / 4.0 - 1e-9);
}

TEST_P(ApproximationSweep, ObjectiveScalingConsistency) {
  SvgicInstance inst = MakeInstance();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok());
  const ObjectiveBreakdown obj = Evaluate(inst, avg_d->config);
  EXPECT_NEAR(obj.Total(), obj.lambda * obj.ScaledTotal(), 1e-9);
  EXPECT_GE(obj.preference, 0.0);
  EXPECT_GE(obj.social_direct, 0.0);
}

TEST_P(ApproximationSweep, RegretsAreWellFormed) {
  SvgicInstance inst = MakeInstance();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok());
  for (double r : RegretRatios(inst, avg_d->config)) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  const SubgroupMetrics m = ComputeSubgroupMetrics(inst, avg_d->config);
  EXPECT_GE(m.intra_fraction, 0.0);
  EXPECT_LE(m.intra_fraction + m.inter_fraction, 1.0 + 1e-9);
  EXPECT_GE(m.co_display_rate, 0.0);
  EXPECT_LE(m.co_display_rate, 1.0);
  EXPECT_GE(m.alone_rate, 0.0);
  EXPECT_LE(m.alone_rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindAndShape, ApproximationSweep,
    testing::Values(
        SweepCase{DatasetKind::kTimik, 6, 10, 2, 0.5, 1},
        SweepCase{DatasetKind::kTimik, 10, 16, 4, 0.5, 2},
        SweepCase{DatasetKind::kEpinions, 8, 12, 3, 0.5, 3},
        SweepCase{DatasetKind::kEpinions, 12, 20, 4, 0.5, 4},
        SweepCase{DatasetKind::kYelp, 8, 12, 3, 0.5, 5},
        SweepCase{DatasetKind::kYelp, 12, 24, 5, 0.5, 6}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    LambdaSweep, ApproximationSweep,
    testing::Values(SweepCase{DatasetKind::kTimik, 8, 12, 3, 0.2, 7},
                    SweepCase{DatasetKind::kTimik, 8, 12, 3, 0.33, 8},
                    SweepCase{DatasetKind::kTimik, 8, 12, 3, 0.67, 9},
                    SweepCase{DatasetKind::kTimik, 8, 12, 3, 0.9, 10}),
    CaseName);

// Corollary 4.3: for k = 1 AVG is a 2-approximation in expectation. Check
// the empirical mean against LP/2 on several k = 1 instances.
class SingleSlotTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SingleSlotTest, TwoApproximationAtKOne) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 8;
  params.num_items = 10;
  params.num_slots = 1;
  params.seed = GetParam();
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  auto frac = SolveRelaxation(*inst);
  ASSERT_TRUE(frac.ok());
  double mean = 0.0;
  const int runs = 25;
  for (int i = 0; i < runs; ++i) {
    AvgOptions opt;
    opt.seed = GetParam() * 131 + i;
    auto avg = RunAvg(*inst, *frac, opt);
    ASSERT_TRUE(avg.ok());
    mean += Evaluate(*inst, avg->config).ScaledTotal();
  }
  mean /= runs;
  EXPECT_GE(mean, frac->lp_objective / 2.0 - 1e-9)
      << "k=1 two-approximation violated";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleSlotTest,
                         testing::Values(31u, 32u, 33u, 34u),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           std::string name = "s";
                           name += std::to_string(info.param);
                           return name;
                         });

// Lambda-scaling property: the rounding decisions depend on lambda only via
// p'; two instances identical up to (p, lambda) -> (p * (1-l)/l scaling)
// produce the same AVG-D configuration.
class LambdaScalingTest : public testing::TestWithParam<double> {};

TEST_P(LambdaScalingTest, AvgDInvariantUnderEquivalentScaling) {
  const double lambda = GetParam();
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 8;
  params.num_items = 12;
  params.num_slots = 3;
  params.lambda = lambda;
  params.seed = 42;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());

  // Equivalent lambda = 1/2 instance: p_half = p * (1-lambda)/lambda.
  SvgicInstance half(inst->graph(), 12, 3, 0.5);
  for (UserId u = 0; u < 8; ++u) {
    for (ItemId c = 0; c < 12; ++c) {
      half.set_p(u, c, inst->ScaledP(u, c));
    }
  }
  for (const Edge& e : inst->graph().edges()) {
    for (const ItemValue& iv : inst->TauEntries(e.id)) {
      half.set_tau(e.id, iv.item, iv.value);
    }
  }
  half.FinalizePairs();
  ASSERT_TRUE(half.Validate().ok());

  auto frac_a = SolveRelaxation(*inst);
  auto frac_b = SolveRelaxation(half);
  ASSERT_TRUE(frac_a.ok() && frac_b.ok());
  // Same relaxation objective (the LPs are identical).
  EXPECT_NEAR(frac_a->lp_objective, frac_b->lp_objective,
              1e-4 * (1 + frac_a->lp_objective));
  auto d_a = RunAvgD(*inst, *frac_a);
  auto d_b = RunAvgD(half, *frac_b);
  ASSERT_TRUE(d_a.ok() && d_b.ok());
  // Scaled totals coincide under the transformation.
  const double va = Evaluate(*inst, d_a->config).ScaledTotal();
  const double vb = Evaluate(half, d_b->config).ScaledTotal();
  EXPECT_NEAR(va, vb, 1e-3 * (1 + va));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaScalingTest,
                         testing::Values(0.25, 0.4, 0.6, 0.75),
                         [](const testing::TestParamInfo<double>& info) {
                           std::string name = "l";
                           name += std::to_string(
                               static_cast<int>(info.param * 100));
                           return name;
                         });

}  // namespace
}  // namespace savg
