#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "lp/simplex.h"
#include "paper_example.h"

namespace savg {
namespace {

/// Small random instance helper.
SvgicInstance RandomInstance(int n, int m, int k, double lambda,
                             uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = lambda;
  params.seed = seed;
  params.universe_users = 4 * n + 20;
  UtilityModelParams u = DefaultUtilityParams(DatasetKind::kTimik);
  u.pref_pool = 0;  // dense small instances
  u.tau_pool = 0;
  params.utility = u;
  params.override_utility = true;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

TEST(LpFormulationTest, Observation2CompactEqualsExpanded) {
  // OPT_SIMP == OPT_SVGIC (Observation 2) on random small instances.
  for (uint64_t seed : {1u, 2u, 3u}) {
    SvgicInstance inst = RandomInstance(5, 8, 3, 0.5, seed);
    CompactLpMap cmap;
    auto compact = BuildCompactLp(inst, &cmap);
    ASSERT_TRUE(compact.ok()) << compact.status();
    ExpandedLpMap emap;
    auto expanded = BuildExpandedLp(inst, &emap);
    ASSERT_TRUE(expanded.ok()) << expanded.status();
    auto sol_c = SolveLp(*compact);
    auto sol_e = SolveLp(*expanded);
    ASSERT_TRUE(sol_c.ok()) << sol_c.status();
    ASSERT_TRUE(sol_e.ok()) << sol_e.status();
    EXPECT_NEAR(sol_c->objective, sol_e->objective,
                1e-6 * (1.0 + std::abs(sol_c->objective)));
  }
}

TEST(LpFormulationTest, CompactLpIsMuchSmaller) {
  SvgicInstance inst = RandomInstance(5, 8, 3, 0.5, 11);
  CompactLpMap cmap;
  ExpandedLpMap emap;
  auto compact = BuildCompactLp(inst, &cmap);
  auto expanded = BuildExpandedLp(inst, &emap);
  ASSERT_TRUE(compact.ok() && expanded.ok());
  EXPECT_LT(compact->num_vars() * 2, expanded->num_vars());
  EXPECT_LT(compact->num_rows() * 2, expanded->num_rows());
}

TEST(LpFormulationTest, LpUpperBoundsIntegerOptimum) {
  for (uint64_t seed : {5u, 6u}) {
    SvgicInstance inst = RandomInstance(4, 5, 2, 0.5, seed);
    auto frac = SolveRelaxation(inst);
    ASSERT_TRUE(frac.ok()) << frac.status();
    auto opt = SolveBruteForce(inst);
    ASSERT_TRUE(opt.ok()) << opt.status();
    EXPECT_GE(frac->lp_objective, opt->scaled_objective - 1e-6);
  }
}

TEST(LpFormulationTest, RelaxationMassIsK) {
  SvgicInstance inst = RandomInstance(6, 10, 4, 0.5, 21);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  for (UserId u = 0; u < 6; ++u) {
    double mass = 0.0;
    for (ItemId c = 0; c < 10; ++c) {
      const double x = frac->XCompact(u, c);
      EXPECT_GE(x, -1e-9);
      EXPECT_LE(x, 1.0 + 1e-9);
      mass += x;
    }
    EXPECT_NEAR(mass, 4.0, 1e-6);
  }
}

TEST(LpFormulationTest, SimplexExpandedCompressesToCompactOptimum) {
  SvgicInstance inst = MakePaperExample(0.5);
  RelaxationOptions opt;
  opt.method = RelaxationMethod::kSimplexExpanded;
  auto expanded = SolveRelaxation(inst, opt);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  opt.method = RelaxationMethod::kSimplex;
  auto compact = SolveRelaxation(inst, opt);
  ASSERT_TRUE(compact.ok());
  EXPECT_NEAR(expanded->lp_objective, compact->lp_objective, 1e-5);
}

TEST(LpFormulationTest, SubgradientApproachesSimplexOptimum) {
  SvgicInstance inst = RandomInstance(6, 10, 3, 0.5, 31);
  RelaxationOptions exact_opt;
  exact_opt.method = RelaxationMethod::kSimplex;
  auto exact = SolveRelaxation(inst, exact_opt);
  ASSERT_TRUE(exact.ok()) << exact.status();
  RelaxationOptions approx_opt;
  approx_opt.method = RelaxationMethod::kSubgradient;
  approx_opt.subgradient.max_iterations = 400;
  approx_opt.subgradient.polish_sweeps = 6;
  auto approx = SolveRelaxation(inst, approx_opt);
  ASSERT_TRUE(approx.ok());
  EXPECT_FALSE(approx->exact);
  EXPECT_LE(approx->lp_objective, exact->lp_objective + 1e-6);
  EXPECT_GE(approx->lp_objective, 0.9 * exact->lp_objective);
}

TEST(LpFormulationTest, LambdaZeroGivesTopK) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_lambda(0.0);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  EXPECT_TRUE(frac->exact);
  // Alice's top 3: c5, c2, c1.
  EXPECT_NEAR(frac->XCompact(kAlice, 4), 1.0, 1e-9);
  EXPECT_NEAR(frac->XCompact(kAlice, 1), 1.0, 1e-9);
  EXPECT_NEAR(frac->XCompact(kAlice, 0), 1.0, 1e-9);
  EXPECT_NEAR(frac->XCompact(kAlice, 2), 0.0, 1e-9);
}

TEST(LpFormulationTest, SupportersSortedAndPruned) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  for (ItemId c : frac->active_items()) {
    const auto& sups = frac->SupportersOf(c);
    ASSERT_FALSE(sups.empty());
    for (size_t i = 0; i + 1 < sups.size(); ++i) {
      EXPECT_GE(sups[i].x, sups[i + 1].x);
    }
    for (const Supporter& s : sups) EXPECT_GT(s.x, 0.0);
  }
}

TEST(LpFormulationTest, StLpRespectsSizeRows) {
  SvgicInstance inst = MakePaperExample(0.5);
  ExpandedLpMap map;
  auto lp = BuildStLp(inst, /*d_tel=*/0.5, /*size_cap=*/2, &map);
  ASSERT_TRUE(lp.ok()) << lp.status();
  auto sol = SolveLp(*lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  // Fractional group sizes can't exceed the cap.
  for (ItemId c = 0; c < 5; ++c) {
    for (SlotId s = 0; s < 3; ++s) {
      double group = 0.0;
      for (UserId u = 0; u < 4; ++u) group += sol->x[map.XVar(u, s, c)];
      EXPECT_LE(group, 2.0 + 1e-6);
    }
  }
  EXPECT_FALSE(map.z.empty());
}

TEST(LpFormulationTest, StLpObjectiveBetweenDiscountedAndPlain) {
  SvgicInstance inst = MakePaperExample(0.5);
  ExpandedLpMap map;
  auto st = BuildStLp(inst, 0.5, /*size_cap=*/4, &map);
  ASSERT_TRUE(st.ok());
  auto st_sol = SolveLp(*st);
  ASSERT_TRUE(st_sol.ok());
  ExpandedLpMap emap;
  auto plain = BuildExpandedLp(inst, &emap);
  ASSERT_TRUE(plain.ok());
  auto plain_sol = SolveLp(*plain);
  ASSERT_TRUE(plain_sol.ok());
  // Teleportation only adds utility; with a non-binding size cap the ST
  // optimum is at least the plain optimum.
  EXPECT_GE(st_sol->objective, plain_sol->objective - 1e-6);
}

TEST(LpFormulationTest, RejectsLambdaZeroLpBuild) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_lambda(0.0);
  CompactLpMap map;
  EXPECT_FALSE(BuildCompactLp(inst, &map).ok());
}

TEST(LpFormulationTest, FillerVariablesForUselessItems) {
  // A 1-user instance with sparse preference: useless items fold into one
  // filler variable.
  SocialGraph g(1);
  SvgicInstance inst(g, 20, 2, 0.5);
  inst.set_p(0, 3, 0.9);
  inst.set_p(0, 7, 0.8);
  inst.FinalizePairs();
  CompactLpMap map;
  auto lp = BuildCompactLp(inst, &map);
  ASSERT_TRUE(lp.ok());
  // 2 useful x vars + 1 filler.
  EXPECT_EQ(lp->num_vars(), 3);
  EXPECT_GE(map.filler[0], 0);
  auto sol = SolveLp(*lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, (0.9 + 0.8), 1e-6);  // p' = p at lambda 1/2
}

}  // namespace
}  // namespace savg
