// Degenerate and boundary SVGIC instances: the full pipeline must behave
// sensibly on a single user, k = m, an edgeless group, all-zero utilities,
// and lambda at the endpoints of [0, 1].

#include <gtest/gtest.h>

#include "baselines/fmg.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "experiments/runner.h"
#include "graph/generators.h"

namespace savg {
namespace {

TEST(RobustnessTest, SingleUserReducesToTopK) {
  SvgicInstance inst(SocialGraph(1), 6, 3, 0.5);
  const double prefs[6] = {0.1, 0.9, 0.3, 0.8, 0.2, 0.7};
  for (ItemId c = 0; c < 6; ++c) inst.set_p(0, c, prefs[c]);
  inst.FinalizePairs();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok()) << frac.status();
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok());
  ASSERT_TRUE(avg_d->config.CheckValid().ok());
  // The three items must be the top three {c1, c3, c5}.
  EXPECT_TRUE(avg_d->config.Displays(0, 1));
  EXPECT_TRUE(avg_d->config.Displays(0, 3));
  EXPECT_TRUE(avg_d->config.Displays(0, 5));
  EXPECT_NEAR(Evaluate(inst, avg_d->config).ScaledTotal(), 0.9 + 0.8 + 0.7,
              1e-5);
}

TEST(RobustnessTest, KEqualsMForcesEveryItem) {
  // With k = m every user must display every item exactly once; only the
  // slot alignment is free.
  SvgicInstance inst(CompleteGraph(3), 4, 4, 0.5);
  Rng rng(3);
  for (UserId u = 0; u < 3; ++u) {
    for (ItemId c = 0; c < 4; ++c) inst.set_p(u, c, rng.Uniform(0, 1));
  }
  for (const Edge& e : inst.graph().edges()) {
    for (ItemId c = 0; c < 4; ++c) inst.set_tau(e.id, c, rng.Uniform(0, 1));
  }
  inst.FinalizePairs();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok()) << frac.status();
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok());
  ASSERT_TRUE(avg_d->config.CheckValid().ok());
  for (UserId u = 0; u < 3; ++u) {
    for (ItemId c = 0; c < 4; ++c) EXPECT_TRUE(avg_d->config.Displays(u, c));
  }
  // Best alignment co-displays everything: the social part should be the
  // full pair mass (an optimal alignment exists since k = m; AVG-D should
  // find most of it — require at least the preference-only LP gap closed).
  const ObjectiveBreakdown obj = Evaluate(inst, avg_d->config);
  EXPECT_GT(obj.social_direct, 0.0);
}

TEST(RobustnessTest, EdgelessGroupNoSocialUtility) {
  SvgicInstance inst(EmptyGraph(4), 8, 2, 0.5);
  Rng rng(5);
  for (UserId u = 0; u < 4; ++u) {
    for (ItemId c = 0; c < 8; ++c) inst.set_p(u, c, rng.Uniform(0, 1));
  }
  inst.FinalizePairs();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  auto avg = RunAvg(inst, *frac, {});
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(avg->config.CheckValid().ok());
  EXPECT_DOUBLE_EQ(Evaluate(inst, avg->config).social_direct, 0.0);
  // AVG must match PER here (no social trade-off to make).
  auto per = RunPersonalizedTopK(inst);
  EXPECT_NEAR(Evaluate(inst, avg->config).ScaledTotal(),
              Evaluate(inst, *per).ScaledTotal(), 1e-6);
}

TEST(RobustnessTest, AllZeroUtilitiesStillValid) {
  SvgicInstance inst(CompleteGraph(3), 5, 2, 0.5);
  inst.FinalizePairs();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok()) << frac.status();
  auto avg = RunAvg(inst, *frac, {});
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg.ok() && avg_d.ok());
  EXPECT_TRUE(avg->config.CheckValid().ok());
  EXPECT_TRUE(avg_d->config.CheckValid().ok());
  EXPECT_DOUBLE_EQ(Evaluate(inst, avg->config).Total(), 0.0);
}

TEST(RobustnessTest, LambdaOneIsPureSocial) {
  // lambda = 1: preference contributes nothing; co-display is everything.
  SvgicInstance inst(CompleteGraph(4), 6, 2, 1.0);
  for (const Edge& e : inst.graph().edges()) {
    inst.set_tau(e.id, 0, 0.5);
    inst.set_tau(e.id, 1, 0.5);
  }
  for (UserId u = 0; u < 4; ++u) {
    for (ItemId c = 2; c < 6; ++c) inst.set_p(u, c, 1.0);  // bait items
  }
  inst.FinalizePairs();
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok());
  // Everyone ends up co-displaying items 0 and 1 despite the preference
  // bait (which carries zero weight at lambda = 1).
  const ObjectiveBreakdown obj = Evaluate(inst, avg_d->config);
  EXPECT_NEAR(obj.social_direct, 2 * 6 * 1.0, 1e-6);  // 6 pairs, w=1, 2 slots
}

TEST(RobustnessTest, AvgLsRunnerVariantImprovesOnAvg) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 14;
  params.num_items = 40;
  params.num_slots = 4;
  params.seed = 77;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  RunnerConfig config;
  auto avg = RunAlgorithm(*inst, Algo::kAvg, config);
  auto avg_ls = RunAlgorithm(*inst, Algo::kAvgLs, config);
  ASSERT_TRUE(avg.ok() && avg_ls.ok());
  EXPECT_TRUE(avg_ls->config.CheckValid().ok());
  EXPECT_GE(avg_ls->scaled_total, avg->scaled_total - 1e-9);
  EXPECT_STREQ(AlgoName(Algo::kAvgLs), "AVG+LS");
}

}  // namespace
}  // namespace savg
