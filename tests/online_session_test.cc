#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "online/basis_projection.h"
#include "online/event_log.h"
#include "online/session.h"
#include "online/session_manager.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, double lambda,
                             uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = lambda;
  params.seed = seed;
  params.universe_users = 4 * n + 20;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

/// Exact LP objective of the session's current instance, solved cold.
double ColdLpObjective(const SvgicInstance& instance) {
  RelaxationOptions options;
  options.method = RelaxationMethod::kSimplex;
  auto frac = SolveRelaxation(instance, options);
  EXPECT_TRUE(frac.ok()) << frac.status();
  return frac->lp_objective;
}

TEST(OnlineSessionTest, FirstResolveIsColdAndComplete) {
  Session session(RandomInstance(12, 20, 3, 0.5, 7));
  auto report = session.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->path, ResolvePath::kCold);
  EXPECT_FALSE(report->warm_started);
  EXPECT_TRUE(session.config().IsComplete());
  EXPECT_TRUE(session.config().CheckValid().ok());
  EXPECT_GT(report->lp_objective, 0.0);
  EXPECT_GT(report->scaled_total, 0.0);
}

TEST(OnlineSessionTest, NoMutationResolveIsFreeIncremental) {
  Session session(RandomInstance(12, 20, 3, 0.5, 7));
  ASSERT_TRUE(session.Resolve().ok());
  auto again = session.Resolve();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->path, ResolvePath::kIncremental);
  EXPECT_TRUE(again->warm_started);
  // Re-solving from the optimal basis of the identical LP does no pivot
  // (the counter includes the final optimality-detecting pricing pass).
  EXPECT_LE(again->pivots, 1);
  EXPECT_EQ(again->rerounded_units, 0);
}

TEST(OnlineSessionTest, SingleUserMutationPivotsAtLeast40PercentBelowCold) {
  // The acceptance workload: a bench-sized instance (larger than the
  // bench_online_sessions stream's n=20), one user's preferences
  // perturbed, incremental vs cold pivot counts. The m=40 bench shape at
  // n=24 keeps the cold reference in the thousands of pivots while
  // staying well inside the ctest timeout under ASan (the two cold
  // solves dominate the test).
  SvgicInstance base = RandomInstance(24, 40, 3, 0.5, 11);
  Session session(base, SessionOptions{});
  ASSERT_TRUE(session.Resolve().ok());

  ASSERT_TRUE(session.PreferenceDelta(3, 5, 0.9).ok());
  ASSERT_TRUE(session.PreferenceDelta(3, 17, 0.05).ok());
  auto warm = session.Resolve();
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->path, ResolvePath::kIncremental);
  EXPECT_TRUE(warm->warm_started);

  // Cold reference: a fresh session over the mutated instance.
  Session cold_session(session.instance(), SessionOptions{});
  auto cold = cold_session.Resolve(/*force_cold=*/true);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->path, ResolvePath::kCold);

  EXPECT_NEAR(warm->lp_objective, cold->lp_objective,
              1e-6 * std::max(1.0, std::abs(cold->lp_objective)));
  ASSERT_GT(cold->pivots, 0);
  EXPECT_LE(warm->pivots, 0.6 * cold->pivots)
      << "incremental " << warm->pivots << " vs cold " << cold->pivots;
}

TEST(OnlineSessionTest, ResolveMatchesColdSolveAfterAnyMutationSequence) {
  // Property: after any mutation sequence, the incremental re-solve
  // reaches the same LP optimum as a cold solve of the mutated instance,
  // and the served configuration stays complete and valid.
  for (uint64_t stream_seed = 1; stream_seed <= 3; ++stream_seed) {
    SvgicInstance base = RandomInstance(14, 24, 3, 0.5, 100 + stream_seed);
    EventStreamParams stream;
    stream.num_mutations = 40;
    stream.resolve_every = 8;
    stream.seed = stream_seed;
    const EventLog log = GenerateEventStream(base, stream);

    Session session(std::move(base));
    ASSERT_TRUE(session.Resolve().ok());
    for (const SessionEvent& event : log) {
      if (event.type != EventType::kResolve) {
        ASSERT_TRUE(session.ApplyEvent(event, nullptr).ok())
            << "stream " << stream_seed;
        continue;
      }
      auto report = session.Resolve();
      ASSERT_TRUE(report.ok()) << report.status();
      const double cold_obj = ColdLpObjective(session.instance());
      EXPECT_NEAR(report->lp_objective, cold_obj,
                  1e-6 * std::max(1.0, std::abs(cold_obj)))
          << "stream " << stream_seed << " path "
          << ResolvePathName(report->path);
      EXPECT_TRUE(session.config().IsComplete());
      EXPECT_TRUE(session.config().CheckValid().ok());
      EXPECT_EQ(session.config().num_users(),
                session.instance().num_users());
      EXPECT_EQ(session.config().num_items(),
                session.instance().num_items());
    }
  }
}

TEST(OnlineSessionTest, MutationsDriveStructuralChanges) {
  Session session(RandomInstance(10, 16, 3, 0.5, 21));
  ASSERT_TRUE(session.Resolve().ok());

  auto joined = session.UserJoined();
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, 10);
  ASSERT_TRUE(session.PreferenceDelta(*joined, 2, 0.8).ok());
  ASSERT_TRUE(session.TauDelta(*joined, 0, 2, 0.5).ok());
  const ItemId item = session.ItemAdded();
  EXPECT_EQ(item, 16);
  ASSERT_TRUE(session.PreferenceDelta(1, item, 0.7).ok());
  ASSERT_TRUE(session.ItemRetired(0).ok());
  ASSERT_TRUE(session.UserLeft(4).ok());

  auto report = session.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(session.config().num_users(), 11);
  EXPECT_EQ(session.config().num_items(), 17);
  EXPECT_TRUE(session.config().IsComplete());
  const double cold_obj = ColdLpObjective(session.instance());
  EXPECT_NEAR(report->lp_objective, cold_obj,
              1e-6 * std::max(1.0, std::abs(cold_obj)));
  // A departed user contributes nothing to the objective.
  for (ItemId c = 0; c < session.instance().num_items(); ++c) {
    EXPECT_EQ(session.instance().p(4, c), 0.0);
  }
}

TEST(OnlineSessionTest, LambdaChangeKeepsShapeAndWarmStarts) {
  Session session(RandomInstance(16, 24, 3, 0.5, 5));
  ASSERT_TRUE(session.Resolve().ok());
  ASSERT_TRUE(session.SetLambda(0.7).ok());
  auto report = session.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->path, ResolvePath::kIncremental);
  EXPECT_TRUE(report->warm_started);
  EXPECT_EQ(report->changed_fraction, 0.0);
  const double cold_obj = ColdLpObjective(session.instance());
  EXPECT_NEAR(report->lp_objective, cold_obj,
              1e-6 * std::max(1.0, std::abs(cold_obj)));
}

TEST(OnlineSessionTest, PeriodicFullReroundFreesEveryUnit) {
  SessionOptions options;
  options.full_reround_period = 3;
  Session session(RandomInstance(14, 20, 3, 0.5, 11), options);
  const int all_units =
      session.instance().num_users() * session.instance().num_slots();
  double value = 0.2;
  for (int resolve = 1; resolve <= 6; ++resolve) {
    ASSERT_TRUE(session.PreferenceDelta(resolve % 14, 2, value).ok());
    value += 0.05;
    auto report = session.Resolve();
    ASSERT_TRUE(report.ok()) << report.status();
    const bool periodic = resolve % 3 == 0;
    EXPECT_EQ(report->full_reround, periodic) << "resolve " << resolve;
    if (periodic) {
      // Every unit re-rounds; the LP still warm-starts incrementally.
      EXPECT_EQ(report->rerounded_units, all_units);
      EXPECT_EQ(report->path, ResolvePath::kIncremental);
    } else if (resolve > 1) {
      EXPECT_LT(report->rerounded_units, all_units);
    }
    EXPECT_TRUE(session.config().IsComplete());
  }
}

TEST(OnlineSessionTest, DriftTriggeredReroundFreesEveryUnit) {
  // A threshold above 1 makes every incremental resolve's kept-unit share
  // fall "below" it: the drift trigger must then free every unit, while a
  // near-zero threshold must never fire.
  SessionOptions eager;
  eager.reround_utility_threshold = 2.0;
  Session session(RandomInstance(14, 20, 3, 0.5, 11), eager);
  const int all_units =
      session.instance().num_users() * session.instance().num_slots();
  auto first = session.Resolve();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->drift_reround);  // cold resolves keep nothing anyway
  double value = 0.2;
  for (int resolve = 0; resolve < 4; ++resolve) {
    ASSERT_TRUE(session.PreferenceDelta(resolve % 14, 2, value).ok());
    value += 0.05;
    auto report = session.Resolve();
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->path, ResolvePath::kIncremental);
    EXPECT_TRUE(report->drift_reround);
    EXPECT_TRUE(report->full_reround);
    EXPECT_EQ(report->rerounded_units, all_units);
    EXPECT_GT(report->kept_utility_share, 0.0);
    EXPECT_LE(report->kept_utility_share, 1.0);
    EXPECT_TRUE(session.config().IsComplete());
  }

  SessionOptions off;
  off.reround_utility_threshold = 1e-9;
  Session calm(RandomInstance(14, 20, 3, 0.5, 11), off);
  ASSERT_TRUE(calm.Resolve().ok());
  ASSERT_TRUE(calm.PreferenceDelta(3, 2, 0.9).ok());
  auto report = calm.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->drift_reround);
  EXPECT_LT(report->rerounded_units, all_units);
}

TEST(OnlineSessionTest, RetiringItemAddedSinceLastResolveIsSafe) {
  // Regression: the served configuration predates the added item, so the
  // retire path must not probe config slots for the new id.
  Session session(RandomInstance(8, 12, 2, 0.5, 9));
  ASSERT_TRUE(session.Resolve().ok());
  const ItemId item = session.ItemAdded();
  ASSERT_TRUE(session.ItemRetired(item).ok());
  auto report = session.Resolve();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(session.config().num_items(), 13);
  EXPECT_TRUE(session.config().IsComplete());
}

TEST(OnlineSessionTest, RejectsInvalidMutations) {
  Session session(RandomInstance(8, 12, 2, 0.5, 3));
  EXPECT_FALSE(session.PreferenceDelta(99, 0, 0.5).ok());
  EXPECT_FALSE(session.PreferenceDelta(0, 99, 0.5).ok());
  EXPECT_FALSE(session.PreferenceDelta(0, 0, -0.5).ok());
  EXPECT_FALSE(session.TauDelta(0, 0, 0, 0.5).ok());  // self pair
  EXPECT_FALSE(session.SetLambda(0.0).ok());
  EXPECT_FALSE(session.SetLambda(1.5).ok());
  EXPECT_FALSE(session.UserLeft(-1).ok());
  EXPECT_FALSE(session.ItemRetired(99).ok());
}

TEST(EventLogTest, RoundTripsThroughTsv) {
  SvgicInstance base = RandomInstance(10, 15, 3, 0.5, 2);
  EventStreamParams params;
  params.num_mutations = 60;
  params.resolve_every = 7;
  params.seed = 9;
  const EventLog log = GenerateEventStream(base, params);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().type, EventType::kResolve);

  std::stringstream stream;
  ASSERT_TRUE(WriteEventLog(log, &stream).ok());
  auto parsed = ReadEventLog(&stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_TRUE((*parsed)[i] == log[i]) << "event " << i;
  }
}

TEST(EventLogTest, RejectsMalformedInput) {
  {
    std::stringstream s("pref 0 1 0.5\nend\n");
    EXPECT_FALSE(ReadEventLog(&s).ok());  // missing header
  }
  {
    std::stringstream s("svgicevents 1\npref 0\nend\n");
    EXPECT_FALSE(ReadEventLog(&s).ok());  // truncated args
  }
  {
    std::stringstream s("svgicevents 1\nwarp 1 2\nend\n");
    EXPECT_FALSE(ReadEventLog(&s).ok());  // unknown event
  }
  {
    std::stringstream s("svgicevents 1\nresolve\n");
    EXPECT_FALSE(ReadEventLog(&s).ok());  // missing end
  }
}

TEST(BasisProjectionTest, IdentityProjectionIsExact) {
  SvgicInstance inst = RandomInstance(10, 16, 3, 0.5, 13);
  CompactLpMap map;
  auto lp = BuildCompactLp(inst, &map);
  ASSERT_TRUE(lp.ok());
  auto sol = SolveLp(*lp);
  ASSERT_TRUE(sol.ok());
  const CompactLpKeys keys = BuildCompactLpKeys(inst, map, *lp);

  BasisProjectionDelta delta;
  const LpBasis projected =
      ProjectCompactBasis(sol->basis, keys, keys, &delta);
  EXPECT_EQ(delta.ChangedFraction(), 0.0);
  EXPECT_EQ(delta.new_cols, 0);
  EXPECT_EQ(delta.dropped_cols, 0);
  auto warm = SolveLp(*lp, SimplexOptions{}, &projected);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_EQ(warm->iterations, 0);
  EXPECT_NEAR(warm->objective, sol->objective, 1e-9);
}

TEST(BasisProjectionTest, ProjectsAcrossAddedUser) {
  SvgicInstance inst = RandomInstance(12, 18, 3, 0.5, 17);
  CompactLpMap map;
  auto lp = BuildCompactLp(inst, &map);
  ASSERT_TRUE(lp.ok());
  auto sol = SolveLp(*lp);
  ASSERT_TRUE(sol.ok());
  const CompactLpKeys keys = BuildCompactLpKeys(inst, map, *lp);

  // Mutate: a new user joins, befriends user 0 and likes two items.
  const UserId nu = inst.AddUser();
  ASSERT_TRUE(inst.AddFriendship(nu, 0).ok());
  inst.set_p(nu, 1, 0.9);
  inst.set_p(nu, 2, 0.4);
  inst.SetTauValue(inst.graph().FindEdge(nu, 0), 1, 0.6);
  inst.RefinalizePairs({nu, 0});
  ASSERT_TRUE(inst.Validate().ok());

  CompactLpMap new_map;
  auto new_lp = BuildCompactLp(inst, &new_map);
  ASSERT_TRUE(new_lp.ok());
  const CompactLpKeys new_keys = BuildCompactLpKeys(inst, new_map, *new_lp);

  BasisProjectionDelta delta;
  const LpBasis projected =
      ProjectCompactBasis(sol->basis, keys, new_keys, &delta);
  EXPECT_GT(delta.new_cols, 0);
  EXPECT_GT(delta.surviving_cols, 0);

  auto cold = SolveLp(*new_lp);
  auto warm = SolveLp(*new_lp, SimplexOptions{}, &projected);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_NEAR(warm->objective, cold->objective, 1e-7);
  EXPECT_LT(warm->iterations, cold->iterations);
}

TEST(SessionManagerTest, ConcurrentSessionsMatchSerialReplay) {
  const int kSessions = 3;
  std::vector<SvgicInstance> bases;
  std::vector<EventLog> logs;
  for (int i = 0; i < kSessions; ++i) {
    bases.push_back(RandomInstance(10, 16, 2, 0.5, 300 + i));
    EventStreamParams stream;
    stream.num_mutations = 20;
    stream.resolve_every = 5;
    stream.seed = 40 + i;
    logs.push_back(GenerateEventStream(bases.back(), stream));
  }

  // Serial reference.
  std::vector<double> serial_totals;
  std::vector<Configuration> serial_configs;
  for (int i = 0; i < kSessions; ++i) {
    SessionOptions options;
    options.seed = 1000 + i;
    Session session(bases[i], options);
    ResolveReport last;
    for (const SessionEvent& event : logs[i]) {
      ASSERT_TRUE(session.ApplyEvent(event, &last).ok());
    }
    serial_totals.push_back(last.scaled_total);
    serial_configs.push_back(session.config());
  }

  // Concurrent replay must be bit-identical (per-session serialization +
  // session-seeded randomness; worker count must not matter).
  for (int workers : {1, 4}) {
    SessionManager manager(workers);
    std::vector<int> ids;
    for (int i = 0; i < kSessions; ++i) {
      SessionOptions options;
      options.seed = 1000 + i;
      ids.push_back(manager.CreateSession(bases[i], options));
    }
    for (int i = 0; i < kSessions; ++i) {
      for (const SessionEvent& event : logs[i]) {
        ASSERT_TRUE(manager.Submit(ids[i], event).ok());
      }
    }
    manager.Drain();
    ASSERT_TRUE(manager.FirstError().ok()) << manager.FirstError();
    for (int i = 0; i < kSessions; ++i) {
      const auto reports = manager.reports(ids[i]);
      ASSERT_FALSE(reports.empty());
      EXPECT_DOUBLE_EQ(reports.back().scaled_total, serial_totals[i])
          << "session " << i << " workers " << workers;
      const Configuration& config = manager.session(ids[i]).config();
      ASSERT_EQ(config.num_users(), serial_configs[i].num_users());
      for (UserId u = 0; u < config.num_users(); ++u) {
        for (SlotId s = 0; s < config.num_slots(); ++s) {
          EXPECT_EQ(config.At(u, s), serial_configs[i].At(u, s))
              << "session " << i << " unit (" << u << ", " << s << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace savg
