// Tests of the canonical SessionCommand binary codec and command log
// (src/serve/session_command.h): randomized round trips must be
// bit-exact, malformed input must be rejected without reading past the
// buffer, and the TSV import shim must replay identically to the legacy
// reader.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>
#include <string>

#include "datagen/datasets.h"
#include "online/event_log.h"
#include "online/session.h"
#include "serve/session_command.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, double lambda,
                             uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = lambda;
  params.seed = seed;
  params.universe_users = 4 * n + 20;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

SessionCommand RandomCommand(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> tag(1, 9);
  std::uniform_int_distribution<int> id(0, 500);
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  switch (static_cast<CommandType>(tag(*rng))) {
    case CommandType::kPref:
      return MakePref(id(*rng), id(*rng), value(*rng));
    case CommandType::kTau:
      return MakeTau(id(*rng), id(*rng), id(*rng), value(*rng));
    case CommandType::kLambda:
      return MakeLambda(value(*rng));
    case CommandType::kJoin:
      return MakeJoin();
    case CommandType::kFriend:
      return MakeFriend(id(*rng), id(*rng));
    case CommandType::kLeave:
      return MakeLeave(id(*rng));
    case CommandType::kAddItem:
      return MakeAddItem();
    case CommandType::kRetireItem:
      return MakeRetireItem(id(*rng));
    case CommandType::kResolve:
      return MakeResolve();
  }
  return MakeResolve();
}

TEST(SessionCommandTest, RandomizedRoundTripIsBitExact) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const SessionCommand cmd = RandomCommand(&rng);
    std::string bytes;
    EncodeCommand(cmd, &bytes);
    EXPECT_EQ(bytes.size(), EncodedCommandSize(cmd));
    size_t consumed = 0;
    auto decoded = DecodeCommand(bytes.data(), bytes.size(), &consumed);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(*decoded, cmd);
    // Canonical: re-encoding the decoded command reproduces the bytes.
    std::string again;
    EncodeCommand(*decoded, &again);
    EXPECT_EQ(again, bytes);
  }
}

TEST(SessionCommandTest, SpecialDoubleBitsSurviveRoundTrip) {
  // IEEE-754 bit-pattern transport: negative zero and subnormals must
  // come back with the exact same bits (operator== would call -0.0 and
  // 0.0 equal, so compare bit patterns directly).
  for (double value : {-0.0, 5e-324, -5e-324, 1.0 / 3.0}) {
    const SessionCommand cmd = MakeLambda(value);
    std::string bytes;
    EncodeCommand(cmd, &bytes);
    size_t consumed = 0;
    auto decoded = DecodeCommand(bytes.data(), bytes.size(), &consumed);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    uint64_t in_bits = 0, out_bits = 0;
    std::memcpy(&in_bits, &value, sizeof(in_bits));
    std::memcpy(&out_bits, &decoded->value, sizeof(out_bits));
    EXPECT_EQ(in_bits, out_bits);
  }
}

TEST(SessionCommandTest, DecodeRejectsTruncatedAndUnknownTags) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const SessionCommand cmd = RandomCommand(&rng);
    std::string bytes;
    EncodeCommand(cmd, &bytes);
    // Every strict prefix shorter than the encoding must fail cleanly.
    for (size_t len = 0; len < bytes.size(); ++len) {
      size_t consumed = 0;
      auto decoded = DecodeCommand(bytes.data(), len, &consumed);
      EXPECT_FALSE(decoded.ok())
          << "prefix " << len << " of " << bytes.size() << " decoded";
    }
  }
  // Unknown / reserved tags.
  for (int tag : {0, 10, 11, 42, 255}) {
    const char byte = static_cast<char>(tag);
    size_t consumed = 0;
    EXPECT_FALSE(DecodeCommand(&byte, 1, &consumed).ok()) << tag;
  }
}

TEST(SessionCommandTest, CommandLogStreamRoundTrip) {
  std::mt19937_64 rng(13);
  CommandLog log;
  for (int i = 0; i < 300; ++i) log.push_back(RandomCommand(&rng));
  std::stringstream stream;
  ASSERT_TRUE(WriteCommandLog(log, &stream).ok());
  const std::string bytes = stream.str();
  auto read_back = ReadCommandLog(&stream);
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(*read_back, log);
  // Re-serializing yields byte-identical output (diffable logs).
  std::stringstream stream2;
  ASSERT_TRUE(WriteCommandLog(*read_back, &stream2).ok());
  EXPECT_EQ(stream2.str(), bytes);
}

TEST(SessionCommandTest, CommandLogRejectsCorruptStreams) {
  CommandLog log = {MakePref(1, 2, 0.5), MakeResolve()};
  std::stringstream good;
  ASSERT_TRUE(WriteCommandLog(log, &good).ok());
  const std::string bytes = good.str();

  {  // Bad magic.
    std::string corrupt = bytes;
    corrupt[0] = 'X';
    std::stringstream in(corrupt);
    EXPECT_FALSE(ReadCommandLog(&in).ok());
  }
  {  // Truncated mid-command.
    std::stringstream in(bytes.substr(0, bytes.size() - 3));
    EXPECT_FALSE(ReadCommandLog(&in).ok());
  }
  {  // Trailing garbage after the declared command count.
    std::stringstream in(bytes + "junk");
    EXPECT_FALSE(ReadCommandLog(&in).ok());
  }
}

TEST(SessionCommandTest, TsvImportShimMatchesLegacyReader) {
  const SvgicInstance inst = RandomInstance(12, 20, 3, 0.5, 17);
  EventStreamParams params;
  params.num_mutations = 60;
  params.resolve_every = 6;
  params.seed = 3;
  const CommandLog log = GenerateEventStream(inst, params);

  // A TSV log read through ReadCommandLog must equal the legacy reader's
  // result exactly.
  std::stringstream tsv;
  ASSERT_TRUE(WriteEventLog(log, &tsv).ok());
  const std::string tsv_bytes = tsv.str();
  std::stringstream legacy_in(tsv_bytes);
  auto legacy = ReadEventLog(&legacy_in);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  std::stringstream shim_in(tsv_bytes);
  auto shim = ReadCommandLog(&shim_in);
  ASSERT_TRUE(shim.ok()) << shim.status();
  EXPECT_EQ(*shim, *legacy);
}

TEST(SessionCommandTest, ConvertedLegacyLogReplaysToIdenticalConfiguration) {
  // The acceptance check: replaying a converted legacy TSV log yields the
  // exact same final configuration as replaying the TSV log directly
  // (all randomness is session-seeded, so equal command streams give
  // bit-identical serving states).
  const SvgicInstance inst = RandomInstance(12, 20, 3, 0.5, 19);
  EventStreamParams params;
  params.num_mutations = 40;
  params.resolve_every = 5;
  params.seed = 5;
  const CommandLog log = GenerateEventStream(inst, params);

  std::stringstream tsv;
  ASSERT_TRUE(WriteEventLog(log, &tsv).ok());
  auto from_tsv = ReadCommandLog(&tsv);
  ASSERT_TRUE(from_tsv.ok()) << from_tsv.status();

  std::stringstream binary;
  ASSERT_TRUE(WriteCommandLog(*from_tsv, &binary).ok());
  auto from_binary = ReadCommandLog(&binary);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status();
  // Note: TSV stores doubles with finite precision, so the equivalence is
  // TSV-read == binary-round-trip of the TSV-read (bit-exact from there).
  ASSERT_EQ(*from_binary, *from_tsv);

  SessionOptions options;
  options.seed = 7;
  Session tsv_session(inst, options);
  Session bin_session(inst, options);
  for (size_t i = 0; i < from_tsv->size(); ++i) {
    ASSERT_TRUE(tsv_session.Apply((*from_tsv)[i]).ok()) << i;
    ASSERT_TRUE(bin_session.Apply((*from_binary)[i]).ok()) << i;
  }
  ASSERT_EQ(tsv_session.config().num_users(),
            bin_session.config().num_users());
  for (UserId u = 0; u < tsv_session.config().num_users(); ++u) {
    EXPECT_EQ(tsv_session.config().ItemsOf(u),
              bin_session.config().ItemsOf(u))
        << "user " << u;
  }
}

TEST(SessionCommandTest, FileRoundTripSniffsBothFormats) {
  std::mt19937_64 rng(23);
  CommandLog log;
  for (int i = 0; i < 50; ++i) log.push_back(RandomCommand(&rng));

  const std::string binary_path =
      ::testing::TempDir() + "/commands_roundtrip.bin";
  ASSERT_TRUE(WriteCommandLogToFile(log, binary_path).ok());
  auto binary = ReadCommandLogFromFile(binary_path);
  ASSERT_TRUE(binary.ok()) << binary.status();
  EXPECT_EQ(*binary, log);

  const std::string tsv_path = ::testing::TempDir() + "/commands_legacy.tsv";
  ASSERT_TRUE(WriteEventLogToFile(log, tsv_path).ok());
  auto tsv = ReadCommandLogFromFile(tsv_path);
  ASSERT_TRUE(tsv.ok()) << tsv.status();
  EXPECT_EQ(tsv->size(), log.size());

  std::remove(binary_path.c_str());
  std::remove(tsv_path.c_str());
}

}  // namespace
}  // namespace savg
