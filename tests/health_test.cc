// Tests of the windowed health rule engine (src/obs/health.h): every
// rule firing in isolation on synthetic windows, the degrade/recover
// hysteresis (one noisy window must not flap the verdict), the
// immediate-unhealthy verification-failure path, and the EWMA latency
// baseline that refuses to absorb regressed windows.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "metrics/timeseries.h"
#include "obs/health.h"

namespace savg {
namespace {

/// A quiet one-second window: no counters moved, nothing fires.
WindowedSnapshot CleanWindow() {
  WindowedSnapshot window;
  window.windows = 1;
  window.seconds = 1.0;
  return window;
}

void AddCounter(WindowedSnapshot* window, const std::string& name,
                int64_t delta) {
  window->counters.push_back(
      {name, delta, static_cast<double>(delta) / window->seconds});
}

void AddGauge(WindowedSnapshot* window, const std::string& name,
              int64_t last, int64_t max) {
  window->gauges.push_back({name, last, max});
}

void AddResolveLatency(WindowedSnapshot* window, int64_t count,
                       double mean) {
  WindowedSnapshot::HistogramRow row;
  row.name = "serve.latency.resolve";
  row.count = count;
  row.rate = static_cast<double>(count) / window->seconds;
  row.mean = mean;
  row.p50 = mean;
  row.p99 = mean;
  window->histograms.push_back(row);
}

bool HasReason(const HealthVerdict& verdict, const std::string& reason) {
  for (const std::string& r : verdict.reasons) {
    if (r == reason) return true;
  }
  return false;
}

/// Default options with the hysteresis shrunk to 1 so single-rule tests
/// can read the verdict off one bad window.
HealthOptions Immediate() {
  HealthOptions options;
  options.degrade_after = 1;
  options.recover_after = 1;
  return options;
}

TEST(HealthMonitorTest, QuietWindowsStayOk) {
  HealthMonitor monitor;
  for (int i = 0; i < 10; ++i) {
    const HealthVerdict verdict = monitor.Evaluate(CleanWindow());
    EXPECT_EQ(verdict.level, HealthLevel::kOk);
    EXPECT_TRUE(verdict.reasons.empty());
  }
  EXPECT_EQ(monitor.verdict().evaluations, 10);
}

TEST(HealthMonitorTest, ShedRateRuleFires) {
  HealthMonitor monitor(Immediate());
  WindowedSnapshot window = CleanWindow();
  AddCounter(&window, "serve.shed", 50);  // 50/s > default 5/s
  const HealthVerdict verdict = monitor.Evaluate(window);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "shed_rate"));
}

TEST(HealthMonitorTest, ShedRateBelowThresholdDoesNotFire) {
  HealthMonitor monitor(Immediate());
  WindowedSnapshot window = CleanWindow();
  AddCounter(&window, "serve.shed", 3);  // 3/s < 5/s
  EXPECT_EQ(monitor.Evaluate(window).level, HealthLevel::kOk);
}

TEST(HealthMonitorTest, QueueSaturationRuleFires) {
  HealthOptions options = Immediate();
  options.queue_capacity = 100;  // fires above 90 (0.9 * capacity)
  HealthMonitor monitor(options);
  WindowedSnapshot window = CleanWindow();
  AddGauge(&window, "serve.queue_depth", /*last=*/10, /*max=*/95);
  const HealthVerdict verdict = monitor.Evaluate(window);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "queue_saturation"));

  // Disabled (capacity 0): the same window reads healthy.
  HealthMonitor no_rule(Immediate());
  EXPECT_EQ(no_rule.Evaluate(window).level, HealthLevel::kOk);
}

TEST(HealthMonitorTest, SlowRequestRateRuleFires) {
  HealthMonitor monitor(Immediate());
  WindowedSnapshot window = CleanWindow();
  AddCounter(&window, "trace.slow", 10);  // 10/s > default 1/s
  const HealthVerdict verdict = monitor.Evaluate(window);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "slow_request_rate"));
}

TEST(HealthMonitorTest, EtaChainGrowthRuleFires) {
  HealthMonitor monitor(Immediate());
  WindowedSnapshot window = CleanWindow();
  AddGauge(&window, "lp.eta_chain", /*last=*/2048, /*max=*/2048);
  const HealthVerdict verdict = monitor.Evaluate(window);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "eta_chain_growth"));
}

TEST(HealthMonitorTest, DriftBudgetRuleFires) {
  HealthMonitor monitor(Immediate());
  WindowedSnapshot window = CleanWindow();
  AddCounter(&window, "session.drift_rerounds", 5);  // 5/s > 0.5/s
  const HealthVerdict verdict = monitor.Evaluate(window);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "drift_budget"));
}

TEST(HealthMonitorTest, ResolveLatencyRegressionRuleFires) {
  HealthMonitor monitor(Immediate());
  // Establish the EWMA baseline around 10ms.
  for (int i = 0; i < 5; ++i) {
    WindowedSnapshot window = CleanWindow();
    AddResolveLatency(&window, /*count=*/20, /*mean=*/0.010);
    EXPECT_EQ(monitor.Evaluate(window).level, HealthLevel::kOk);
  }
  // 40ms > 3x baseline: regression.
  WindowedSnapshot slow = CleanWindow();
  AddResolveLatency(&slow, /*count=*/20, /*mean=*/0.040);
  const HealthVerdict verdict = monitor.Evaluate(slow);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "resolve_latency_regression"));
}

TEST(HealthMonitorTest, LatencyBaselineIgnoresSparseWindows) {
  HealthMonitor monitor(Immediate());
  // Baseline at 10ms.
  for (int i = 0; i < 3; ++i) {
    WindowedSnapshot window = CleanWindow();
    AddResolveLatency(&window, /*count=*/20, /*mean=*/0.010);
    monitor.Evaluate(window);
  }
  // A 2-resolve window (below latency_min_count) can be arbitrarily slow
  // without firing: two cold solves are not a fleet-level regression.
  WindowedSnapshot sparse = CleanWindow();
  AddResolveLatency(&sparse, /*count=*/2, /*mean=*/1.0);
  EXPECT_EQ(monitor.Evaluate(sparse).level, HealthLevel::kOk);
}

TEST(HealthMonitorTest, SustainedRegressionDoesNotPolluteBaseline) {
  HealthMonitor monitor(Immediate());
  for (int i = 0; i < 5; ++i) {
    WindowedSnapshot window = CleanWindow();
    AddResolveLatency(&window, /*count=*/20, /*mean=*/0.010);
    monitor.Evaluate(window);
  }
  // If regressed windows fed the EWMA, the baseline would chase the
  // regression and the rule would stop firing after a few windows.
  for (int i = 0; i < 10; ++i) {
    WindowedSnapshot slow = CleanWindow();
    AddResolveLatency(&slow, /*count=*/20, /*mean=*/0.040);
    const HealthVerdict verdict = monitor.Evaluate(slow);
    EXPECT_EQ(verdict.level, HealthLevel::kDegraded) << "window " << i;
    EXPECT_TRUE(HasReason(verdict, "resolve_latency_regression"));
  }
}

TEST(HealthMonitorTest, OneNoisyWindowDoesNotFlap) {
  HealthMonitor monitor;  // default degrade_after = 2
  WindowedSnapshot bad = CleanWindow();
  AddCounter(&bad, "serve.shed", 50);
  // bad, clean, bad, clean ... never two bad in a row: stays ok.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(monitor.Evaluate(bad).level, HealthLevel::kOk);
    EXPECT_EQ(monitor.Evaluate(CleanWindow()).level, HealthLevel::kOk);
  }
  // Two consecutive bad windows: degraded.
  EXPECT_EQ(monitor.Evaluate(bad).level, HealthLevel::kOk);
  EXPECT_EQ(monitor.Evaluate(bad).level, HealthLevel::kDegraded);
  // One clean window is not yet recovery (recover_after = 2)...
  EXPECT_EQ(monitor.Evaluate(CleanWindow()).level, HealthLevel::kDegraded);
  // ...the second is.
  const HealthVerdict recovered = monitor.Evaluate(CleanWindow());
  EXPECT_EQ(recovered.level, HealthLevel::kOk);
  EXPECT_TRUE(recovered.reasons.empty());
}

TEST(HealthMonitorTest, VerifyFailureTripsUnhealthyImmediately) {
  HealthMonitor monitor;  // degrade_after = 2 must NOT apply here
  WindowedSnapshot bad = CleanWindow();
  AddCounter(&bad, "verify.fail", 1);
  const HealthVerdict verdict = monitor.Evaluate(bad);
  EXPECT_EQ(verdict.level, HealthLevel::kUnhealthy);
  EXPECT_TRUE(HasReason(verdict, "verify_failure"));
  // Recovery still takes the normal clean-window path.
  EXPECT_EQ(monitor.Evaluate(CleanWindow()).level, HealthLevel::kUnhealthy);
  EXPECT_EQ(monitor.Evaluate(CleanWindow()).level, HealthLevel::kOk);
}

TEST(HealthMonitorTest, ReasonsTrackTheFreshestBadWindow) {
  HealthMonitor monitor(Immediate());
  WindowedSnapshot shed = CleanWindow();
  AddCounter(&shed, "serve.shed", 50);
  EXPECT_TRUE(HasReason(monitor.Evaluate(shed), "shed_rate"));
  // The degraded verdict's reasons follow the latest active rules.
  WindowedSnapshot slow = CleanWindow();
  AddCounter(&slow, "trace.slow", 10);
  const HealthVerdict verdict = monitor.Evaluate(slow);
  EXPECT_EQ(verdict.level, HealthLevel::kDegraded);
  EXPECT_TRUE(HasReason(verdict, "slow_request_rate"));
  EXPECT_FALSE(HasReason(verdict, "shed_rate"));
}

TEST(HealthMonitorTest, JsonDumpCarriesStatusAndReasons) {
  HealthMonitor monitor(Immediate());
  EXPECT_NE(monitor.JsonDump().find("\"status\": \"ok\""),
            std::string::npos);
  WindowedSnapshot bad = CleanWindow();
  AddCounter(&bad, "serve.shed", 50);
  monitor.Evaluate(bad);
  const std::string json = monitor.JsonDump();
  EXPECT_NE(json.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_rate\""), std::string::npos);
}

}  // namespace
}  // namespace savg
