#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "metrics/metrics.h"
#include "paper_example.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, uint64_t seed,
                             DatasetKind kind = DatasetKind::kTimik) {
  DatasetParams params;
  params.kind = kind;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.seed = seed;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

FractionalSolution Solve(const SvgicInstance& inst) {
  auto frac = SolveRelaxation(inst);
  EXPECT_TRUE(frac.ok()) << frac.status();
  return std::move(frac).value();
}

TEST(AvgDTest, ProducesValidConfiguration) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  auto result = RunAvgD(inst, frac);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->config.CheckValid().ok());
}

TEST(AvgDTest, IncrementalMatchesNaiveRescan) {
  // The lazy-invalidation heap must produce exactly the same configuration
  // as full re-scoring every iteration (ties are broken identically).
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SvgicInstance inst = RandomInstance(8, 12, 3, seed);
    FractionalSolution frac = Solve(inst);
    AvgDOptions inc;
    inc.incremental = true;
    AvgDOptions naive;
    naive.incremental = false;
    auto a = RunAvgD(inst, frac, inc);
    auto b = RunAvgD(inst, frac, naive);
    ASSERT_TRUE(a.ok() && b.ok());
    const double va = Evaluate(inst, a->config).ScaledTotal();
    const double vb = Evaluate(inst, b->config).ScaledTotal();
    EXPECT_NEAR(va, vb, 1e-9) << "seed " << seed;
    for (UserId u = 0; u < inst.num_users(); ++u) {
      for (SlotId s = 0; s < inst.num_slots(); ++s) {
        EXPECT_EQ(a->config.At(u, s), b->config.At(u, s))
            << "seed " << seed << " u " << u << " s " << s;
      }
    }
  }
}

TEST(AvgDTest, WorstCaseFourApproximationOnRandomInstances) {
  // Theorem 5: AVG-D is a deterministic 4-approximation. Check against the
  // LP bound (>= OPT) on several random instances.
  for (uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    SvgicInstance inst = RandomInstance(7, 9, 3, seed, DatasetKind::kYelp);
    FractionalSolution frac = Solve(inst);
    auto result = RunAvgD(inst, frac);
    ASSERT_TRUE(result.ok());
    const double value = Evaluate(inst, result->config).ScaledTotal();
    EXPECT_GE(value, frac.lp_objective / 4.0 - 1e-9) << "seed " << seed;
  }
}

TEST(AvgDTest, BeatsOrMatchesBruteForceQuarter) {
  // Against the true optimum on tiny instances AVG-D is usually far above
  // the 1/4 bound; assert >= 0.7 OPT empirically (a regression canary).
  for (uint64_t seed : {21u, 22u, 23u}) {
    SvgicInstance inst = RandomInstance(4, 5, 2, seed);
    FractionalSolution frac = Solve(inst);
    auto result = RunAvgD(inst, frac);
    ASSERT_TRUE(result.ok());
    auto opt = SolveBruteForce(inst);
    ASSERT_TRUE(opt.ok());
    const double value = Evaluate(inst, result->config).ScaledTotal();
    EXPECT_GE(value, 0.7 * opt->scaled_objective) << "seed " << seed;
  }
}

TEST(AvgDTest, SmallRResemblesGroupApproach) {
  // Section 6.7: r -> 0 greedily maximizes the current gain, forming large
  // subgroups (group-approach-like); large r forms tiny subgroups
  // (personalized-like).
  SvgicInstance inst = RandomInstance(10, 14, 3, 77);
  FractionalSolution frac = Solve(inst);
  AvgDOptions small_r;
  small_r.r = 0.01;
  AvgDOptions large_r;
  large_r.r = 5.0;
  auto small = RunAvgD(inst, frac, small_r);
  auto large = RunAvgD(inst, frac, large_r);
  ASSERT_TRUE(small.ok() && large.ok());
  const SubgroupMetrics sm = ComputeSubgroupMetrics(inst, small->config);
  const SubgroupMetrics lm = ComputeSubgroupMetrics(inst, large->config);
  EXPECT_GE(sm.co_display_rate, lm.co_display_rate);
  const double soc_small = Evaluate(inst, small->config).social_direct;
  const double soc_large = Evaluate(inst, large->config).social_direct;
  EXPECT_GE(soc_small, soc_large);
}

TEST(AvgDTest, DeterministicAcrossRuns) {
  SvgicInstance inst = RandomInstance(9, 10, 3, 55);
  FractionalSolution frac = Solve(inst);
  auto a = RunAvgD(inst, frac);
  auto b = RunAvgD(inst, frac);
  ASSERT_TRUE(a.ok() && b.ok());
  for (UserId u = 0; u < inst.num_users(); ++u) {
    for (SlotId s = 0; s < inst.num_slots(); ++s) {
      EXPECT_EQ(a->config.At(u, s), b->config.At(u, s));
    }
  }
}

TEST(AvgDTest, UsuallyAtLeastAsGoodAsSingleAvgRun) {
  // Not a theorem, but the paper observes AVG-D slightly above AVG; check
  // it holds on average across instances.
  double d_total = 0.0, avg_total = 0.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SvgicInstance inst = RandomInstance(8, 10, 3, seed * 31);
    FractionalSolution frac = Solve(inst);
    auto d = RunAvgD(inst, frac);
    ASSERT_TRUE(d.ok());
    d_total += Evaluate(inst, d->config).ScaledTotal();
    AvgOptions aopt;
    aopt.seed = seed;
    auto a = RunAvg(inst, frac, aopt);
    ASSERT_TRUE(a.ok());
    avg_total += Evaluate(inst, a->config).ScaledTotal();
  }
  EXPECT_GE(d_total, 0.95 * avg_total);
}

TEST(AvgDTest, RejectsNegativeR) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  AvgDOptions opt;
  opt.r = -1.0;
  EXPECT_FALSE(RunAvgD(inst, frac, opt).ok());
}

}  // namespace
}  // namespace savg
