// Tests of the standalone KKT audit (src/lp/kkt.h) and the sampled
// solution self-verifier (src/obs/verify.h): a solved LP must pass, each
// perturbation class must land in its own violation bucket, and the
// verifier must route config / objective / KKT / injected failures to
// the right verify.* counters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/objective.h"
#include "lp/kkt.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"
#include "metrics/registry.h"
#include "obs/verify.h"
#include "paper_example.h"

namespace savg {
namespace {

/// max x0 + 2*x1 s.t. x0 + x1 <= 1, 0 <= x <= 1. Optimal x = (0, 1),
/// row dual y = 2 (binds; the second objective coefficient prices it),
/// reduced costs d = (-1, 0).
LpModel TinyLp() {
  LpModel m;
  const int x0 = m.AddVariable(0.0, 1.0, 1.0);
  const int x1 = m.AddVariable(0.0, 1.0, 2.0);
  m.AddRow(RowType::kLessEqual, 1.0, {{x0, 1.0}, {x1, 1.0}});
  return m;
}

TEST(KktTest, OptimalPointPasses) {
  const LpModel m = TinyLp();
  const KktReport report = CheckLpKkt(m, {0.0, 1.0}, {2.0});
  EXPECT_TRUE(report.Ok(1e-9)) << report.MaxViolation();
}

TEST(KktTest, PrimalInfeasibilityIsReported) {
  const LpModel m = TinyLp();
  // x0 + x1 = 1.5 violates the row by 0.5.
  const KktReport report = CheckLpKkt(m, {0.5, 1.0}, {2.0});
  EXPECT_NEAR(report.max_primal_violation, 0.5, 1e-9);
  EXPECT_FALSE(report.Ok(1e-5));
}

TEST(KktTest, WrongDualSignIsReported) {
  const LpModel m = TinyLp();
  // A <= row must carry a nonnegative dual in maximize orientation.
  const KktReport report = CheckLpKkt(m, {0.0, 1.0}, {-2.0});
  EXPECT_GT(report.max_dual_sign_violation, 1.0);
  EXPECT_FALSE(report.Ok(1e-5));
}

TEST(KktTest, SlackRowWithNonzeroDualViolatesComplementarity) {
  LpModel m;
  const int x0 = m.AddVariable(0.0, 1.0, 1.0);
  // Two rows; the second is slack at the optimum x0 = 1.
  m.AddRow(RowType::kLessEqual, 1.0, {{x0, 1.0}});
  m.AddRow(RowType::kLessEqual, 5.0, {{x0, 1.0}});
  // Pricing the slack row (y1 = 0.5) is a complementarity violation;
  // y0 = 0.5 keeps stationarity exact (y0 + y1 = c0 = 1).
  const KktReport report = CheckLpKkt(m, {1.0}, {0.5, 0.5});
  EXPECT_NEAR(report.max_complementary_slackness, 0.5, 1e-9);
  EXPECT_NEAR(report.max_reduced_cost_violation, 0.0, 1e-9);
  EXPECT_FALSE(report.Ok(1e-5));
}

TEST(KktTest, PerturbedDualsViolateStationarity) {
  const LpModel m = TinyLp();
  // y = 0 leaves the binding row unpriced: x0 sits at its LOWER bound
  // with a positive reduced cost d0 = c0 = 1, a stationarity violation.
  const KktReport report = CheckLpKkt(m, {0.0, 1.0}, {0.0});
  EXPECT_GT(report.max_reduced_cost_violation, 0.5);
  EXPECT_FALSE(report.Ok(1e-5));
}

TEST(KktTest, SolvedLpPasses) {
  // End to end against the simplex itself on the paper example's scale:
  // a small random-ish LP solved by SolveLp must audit clean.
  LpModel m;
  std::vector<LpTerm> row1, row2;
  for (int j = 0; j < 8; ++j) {
    const int v = m.AddVariable(0.0, 1.0, 1.0 + 0.25 * j);
    row1.push_back({v, 1.0 + (j % 3)});
    row2.push_back({v, 2.0 - (j % 2)});
  }
  m.AddRow(RowType::kLessEqual, 4.0, row1);
  m.AddRow(RowType::kLessEqual, 3.0, row2);
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  const KktReport report = CheckLpKkt(m, sol->x, sol->dual_values);
  EXPECT_TRUE(report.Ok(1e-6)) << report.MaxViolation();
}

// --- SolutionVerifier -------------------------------------------------

/// A complete, duplicate-free config on the paper example: user u sees
/// items (0, 1, 2) at slots (0, 1, 2).
Configuration SimpleConfig(const SvgicInstance& inst) {
  Configuration config(inst.num_users(), inst.num_slots(),
                       inst.num_items());
  for (UserId u = 0; u < inst.num_users(); ++u) {
    for (SlotId s = 0; s < inst.num_slots(); ++s) {
      EXPECT_TRUE(config.Set(u, s, s).ok());
    }
  }
  return config;
}

VerifyJob MakeJob(const SvgicInstance& inst) {
  VerifyJob job;
  job.instance = inst;
  job.config = SimpleConfig(inst);
  job.reported_scaled_total = Evaluate(inst, job.config).ScaledTotal();
  return job;
}

TEST(SolutionVerifierTest, ConsistentJobPasses) {
  MetricsRegistry metrics;
  SolutionVerifier verifier(&metrics);
  const SvgicInstance inst = MakePaperExample(0.5);
  verifier.Enqueue(MakeJob(inst));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.pass")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.fail")->value(), 0);
  EXPECT_EQ(metrics.GetHistogram("verify.latency")->count(), 1);
}

TEST(SolutionVerifierTest, ObjectiveMismatchFails) {
  MetricsRegistry metrics;
  SolutionVerifier verifier(&metrics);
  const SvgicInstance inst = MakePaperExample(0.5);
  VerifyJob job = MakeJob(inst);
  job.reported_scaled_total += 0.5;  // far beyond the relative tolerance
  verifier.Enqueue(std::move(job));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.fail")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.fail.objective")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.pass")->value(), 0);
}

TEST(SolutionVerifierTest, InvalidConfigFails) {
  MetricsRegistry metrics;
  SolutionVerifier verifier(&metrics);
  const SvgicInstance inst = MakePaperExample(0.5);
  VerifyJob job = MakeJob(inst);
  job.config.Unset(0, 0);  // incomplete: CheckValid must reject
  verifier.Enqueue(std::move(job));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.fail")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.fail.config")->value(), 1);
}

TEST(SolutionVerifierTest, BadDualsFailTheKktAudit) {
  MetricsRegistry metrics;
  SolutionVerifier verifier(&metrics);
  const SvgicInstance inst = MakePaperExample(0.5);
  VerifyJob job = MakeJob(inst);
  job.has_lp = true;
  job.lp = TinyLp();
  job.x = {0.0, 1.0};
  job.duals = {-2.0};  // wrong sign
  verifier.Enqueue(std::move(job));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.fail")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.fail.kkt")->value(), 1);
}

TEST(SolutionVerifierTest, InjectedFailureTripsTheFailCounter) {
  MetricsRegistry metrics;
  SolutionVerifier verifier(&metrics);
  const SvgicInstance inst = MakePaperExample(0.5);
  verifier.InjectFailures(true);
  verifier.Enqueue(MakeJob(inst));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.fail")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.fail.injected")->value(), 1);
  // Back off: the same job passes again.
  verifier.InjectFailures(false);
  verifier.Enqueue(MakeJob(inst));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.pass")->value(), 1);
}

TEST(SolutionVerifierTest, SamplingHonorsRateAndForce) {
  MetricsRegistry metrics;
  VerifierOptions options;
  options.sample_every = 4;
  SolutionVerifier verifier(&metrics, options);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    if (verifier.ShouldVerify(/*forced=*/false)) ++sampled;
  }
  EXPECT_EQ(sampled, 4);  // every 4th
  EXPECT_TRUE(verifier.ShouldVerify(/*forced=*/true));

  VerifierOptions forced_only;
  forced_only.sample_every = 0;
  SolutionVerifier gate(&metrics, forced_only);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(gate.ShouldVerify(/*forced=*/false));
  }
  EXPECT_TRUE(gate.ShouldVerify(/*forced=*/true));
}

TEST(SolutionVerifierTest, OverflowDropsInsteadOfBlocking) {
  MetricsRegistry metrics;
  VerifierOptions options;
  options.max_pending = 0;  // everything drops: worst-case bound
  SolutionVerifier verifier(&metrics, options);
  const SvgicInstance inst = MakePaperExample(0.5);
  verifier.Enqueue(MakeJob(inst));
  verifier.Flush();
  EXPECT_EQ(metrics.GetCounter("verify.dropped")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("verify.pass")->value(), 0);
}

TEST(ScopedForceVerifyTest, RestoresPreviousValue) {
  EXPECT_FALSE(ForceVerifyRequested());
  {
    ScopedForceVerify outer(true);
    EXPECT_TRUE(ForceVerifyRequested());
    {
      ScopedForceVerify inner(false);
      EXPECT_FALSE(ForceVerifyRequested());
    }
    EXPECT_TRUE(ForceVerifyRequested());
  }
  EXPECT_FALSE(ForceVerifyRequested());
}

}  // namespace
}  // namespace savg
