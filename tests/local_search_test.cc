#include <gtest/gtest.h>

#include "baselines/per.h"
#include "core/avg.h"
#include "core/local_search.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(LocalSearchTest, NeverDecreasesValueAndStaysValid) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    DatasetParams params;
    params.kind = DatasetKind::kYelp;
    params.num_users = 12;
    params.num_items = 30;
    params.num_slots = 4;
    params.seed = seed;
    auto inst = GenerateDataset(params);
    ASSERT_TRUE(inst.ok());
    auto per = RunPersonalizedTopK(*inst);
    ASSERT_TRUE(per.ok());
    auto improved = ImproveByLocalSearch(*inst, *per);
    ASSERT_TRUE(improved.ok()) << improved.status();
    EXPECT_TRUE(improved->config.CheckValid().ok());
    EXPECT_GE(improved->final_value, improved->initial_value - 1e-9);
    EXPECT_NEAR(improved->final_value,
                Evaluate(*inst, improved->config).ScaledTotal(), 1e-6);
  }
}

TEST(LocalSearchTest, ImprovesPersonalizedTowardSocial) {
  // PER ignores social utility entirely; on a social-heavy instance local
  // search must find strictly better alignments.
  SvgicInstance inst = MakePaperExample(0.5);
  auto per = RunPersonalizedTopK(inst);
  ASSERT_TRUE(per.ok());
  auto improved = ImproveByLocalSearch(inst, *per);
  ASSERT_TRUE(improved.ok());
  EXPECT_GT(improved->final_value, improved->initial_value);
  EXPECT_GT(improved->moves_taken, 0);
}

TEST(LocalSearchTest, FixpointOfOptimumIsOptimum) {
  SvgicInstance inst = MakePaperExample(0.5);
  const Configuration opt = MakeSavgOptimalConfig();
  auto improved = ImproveByLocalSearch(inst, opt);
  ASSERT_TRUE(improved.ok());
  EXPECT_NEAR(improved->final_value, 10.35, 1e-5);
}

TEST(LocalSearchTest, RespectsSizeCap) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 12;
  params.num_items = 20;
  params.num_slots = 3;
  params.seed = 9;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  auto frac = SolveRelaxation(*inst);
  ASSERT_TRUE(frac.ok());
  AvgOptions avg;
  avg.size_cap = 3;
  avg.seed = 9;
  auto rounded = RunAvg(*inst, *frac, avg);
  ASSERT_TRUE(rounded.ok());
  ASSERT_EQ(SizeConstraintViolation(rounded->config, 3), 0);
  LocalSearchOptions opt;
  opt.size_cap = 3;
  auto improved = ImproveByLocalSearch(*inst, rounded->config, opt);
  ASSERT_TRUE(improved.ok());
  EXPECT_EQ(SizeConstraintViolation(improved->config, 3), 0);
  EXPECT_GE(improved->final_value, improved->initial_value - 1e-9);
}

TEST(LocalSearchTest, RejectsIncompleteConfiguration) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration partial(4, 3, 5);
  ASSERT_TRUE(partial.Set(0, 0, 1).ok());
  EXPECT_FALSE(ImproveByLocalSearch(inst, partial).ok());
}

TEST(LocalSearchTest, SweepBudgetIsHonoured) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto per = RunPersonalizedTopK(inst);
  LocalSearchOptions opt;
  opt.max_sweeps = 1;
  auto improved = ImproveByLocalSearch(inst, *per, opt);
  ASSERT_TRUE(improved.ok());
  EXPECT_EQ(improved->sweeps, 1);
}

}  // namespace
}  // namespace savg
