// Stress / cross-check tests for the optimization substrate:
//  * random bounded LPs: simplex optimum vs explicit vertex checks and the
//    subgradient path on matching concave problems,
//  * random 0/1 MIPs: branch & bound vs exhaustive enumeration,
//  * degenerate and near-singular corner cases.

#include <gtest/gtest.h>

#include <cmath>

#include "lp/branch_and_bound.h"
#include "lp/lp_model.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace savg {
namespace {

TEST(SolverStressTest, RandomMipsMatchEnumeration) {
  Rng rng(1234);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8;
    LpModel model;
    std::vector<int> vars;
    std::vector<double> objs(n), weights(n);
    for (int i = 0; i < n; ++i) {
      objs[i] = rng.Uniform(-2, 8);
      weights[i] = rng.Uniform(0.5, 3);
      vars.push_back(model.AddVariable(0, 1, objs[i]));
    }
    std::vector<LpTerm> row;
    for (int i = 0; i < n; ++i) row.push_back({vars[i], weights[i]});
    const double budget = rng.Uniform(2, 8);
    model.AddRow(RowType::kLessEqual, budget, row);
    // Optional extra constraint: at most 4 items.
    std::vector<LpTerm> count_row;
    for (int i = 0; i < n; ++i) count_row.push_back({vars[i], 1.0});
    model.AddRow(RowType::kLessEqual, 4, count_row);

    auto mip = SolveMip(model, vars);
    ASSERT_TRUE(mip.ok()) << mip.status();
    ASSERT_TRUE(mip->proven_optimal);

    double best = 0.0;  // empty set is feasible
    for (int mask = 0; mask < (1 << n); ++mask) {
      double w = 0, v = 0;
      int count = 0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) {
          w += weights[i];
          v += objs[i];
          ++count;
        }
      }
      if (w <= budget + 1e-12 && count <= 4) best = std::max(best, v);
    }
    EXPECT_NEAR(mip->objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(SolverStressTest, RandomEqualityLpsAreFeasibleAndBounded) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 10;
    LpModel model;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) {
      vars.push_back(model.AddVariable(0, 1, rng.Uniform(0, 1)));
    }
    // Random transportation-like structure: two equality rows whose RHS is
    // achievable.
    std::vector<LpTerm> r1, r2;
    for (int i = 0; i < n / 2; ++i) r1.push_back({vars[i], 1.0});
    for (int i = n / 2; i < n; ++i) r2.push_back({vars[i], 1.0});
    model.AddRow(RowType::kEqual, rng.Uniform(0.5, n / 2.0 - 0.5), r1);
    model.AddRow(RowType::kEqual, rng.Uniform(0.5, n / 2.0 - 0.5), r2);
    auto sol = SolveLp(model);
    ASSERT_TRUE(sol.ok()) << sol.status();
    EXPECT_LT(model.MaxViolation(sol->x), 1e-7) << "trial " << trial;
  }
}

TEST(SolverStressTest, FixedVariablesAreRespected) {
  LpModel model;
  const int x = model.AddVariable(0.3, 0.3, 5.0);  // fixed
  const int y = model.AddVariable(0, 1, 1.0);
  model.AddRow(RowType::kLessEqual, 0.8, {{x, 1.0}, {y, 1.0}});
  auto sol = SolveLp(model);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->x[x], 0.3, 1e-9);
  EXPECT_NEAR(sol->x[y], 0.5, 1e-7);
}

TEST(SolverStressTest, ZeroObjectiveReturnsFeasiblePoint) {
  LpModel model;
  const int x = model.AddVariable(0, 1, 0.0);
  const int y = model.AddVariable(0, 1, 0.0);
  model.AddRow(RowType::kEqual, 1.2, {{x, 1.0}, {y, 1.0}});
  auto sol = SolveLp(model);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_LT(model.MaxViolation(sol->x), 1e-8);
}

TEST(SolverStressTest, ManyRedundantRowsStayStable) {
  // 60 copies of the same constraint (maximum degeneracy pressure).
  LpModel model;
  const int x = model.AddVariable(0, kLpInfinity, 1.0);
  const int y = model.AddVariable(0, kLpInfinity, 1.0);
  for (int i = 0; i < 60; ++i) {
    model.AddRow(RowType::kLessEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  }
  auto sol = SolveLp(model);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 1.0, 1e-8);
}

TEST(SolverStressTest, TinyCoefficientsDoNotBreakPivoting) {
  LpModel model;
  const int x = model.AddVariable(0, kLpInfinity, 1.0);
  model.AddRow(RowType::kLessEqual, 1e-7, {{x, 1e-7}});  // x <= 1
  auto sol = SolveLp(model);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 1.0, 1e-5);
}

TEST(SolverStressTest, IterationLimitSurfacesAsResourceExhausted) {
  Rng rng(5);
  LpModel model;
  std::vector<int> vars;
  for (int i = 0; i < 30; ++i) {
    vars.push_back(model.AddVariable(0, 1, rng.Uniform(0, 1)));
  }
  for (int r = 0; r < 25; ++r) {
    std::vector<LpTerm> row;
    for (int i = 0; i < 30; ++i) {
      if (rng.Bernoulli(0.5)) row.push_back({vars[i], rng.Uniform(0.1, 1)});
    }
    if (!row.empty()) {
      model.AddRow(RowType::kLessEqual, rng.Uniform(1, 3), row);
    }
  }
  SimplexOptions opt;
  opt.max_iterations = 2;  // absurdly small
  auto sol = SolveLp(model, opt);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace savg
