#include <gtest/gtest.h>

#include "core/objective.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(ObjectiveTest, EmptyConfigurationIsZero) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config(4, 3, 5);
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  EXPECT_DOUBLE_EQ(obj.Total(), 0.0);
  EXPECT_DOUBLE_EQ(obj.preference, 0.0);
  EXPECT_DOUBLE_EQ(obj.social_direct, 0.0);
}

TEST(ObjectiveTest, PartialConfigurationCounts) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config(4, 3, 5);
  ASSERT_TRUE(config.Set(kAlice, 0, 4).ok());
  ASSERT_TRUE(config.Set(kCharlie, 0, 4).ok());
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  // p(A,c5) + p(C,c5) = 1.0 + 0.1; pair (A,C) on c5 = 0.3 + 0.3.
  EXPECT_NEAR(obj.preference, 1.1, 1e-5);
  EXPECT_NEAR(obj.social_direct, 0.6, 1e-5);
}

TEST(ObjectiveTest, LambdaWeightingMatchesDefinition) {
  SvgicInstance inst = MakePaperExample(0.4);
  Configuration config = MakeSavgOptimalConfig();
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  EXPECT_NEAR(obj.Total(), 0.6 * 8.0 + 0.4 * 2.35, 1e-5);
  EXPECT_NEAR(obj.ScaledTotal(), obj.Total() / 0.4, 1e-9);
}

TEST(ObjectiveTest, IndirectCoDisplayWithDiscount) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config(4, 3, 5);
  // Alice sees c5 at slot 0; Charlie sees c5 at slot 1: indirect only.
  ASSERT_TRUE(config.Set(kAlice, 0, 4).ok());
  ASSERT_TRUE(config.Set(kCharlie, 1, 4).ok());
  EvaluateOptions st;
  st.d_tel = 0.5;
  const ObjectiveBreakdown obj = Evaluate(inst, config, st);
  EXPECT_NEAR(obj.social_direct, 0.0, 1e-9);
  EXPECT_NEAR(obj.social_indirect, 0.6, 1e-5);
  // Total = 0.5 * pref + 0.5 * (0 + 0.5 * 0.6).
  EXPECT_NEAR(obj.Total(), 0.5 * 1.1 + 0.5 * 0.3, 1e-5);
}

TEST(ObjectiveTest, DirectAndIndirectAreExclusive) {
  // No-duplication makes direct + indirect impossible for one (pair, item),
  // so flipping one endpoint's slot converts indirect into direct.
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config(4, 3, 5);
  ASSERT_TRUE(config.Set(kAlice, 1, 4).ok());
  ASSERT_TRUE(config.Set(kCharlie, 1, 4).ok());
  EvaluateOptions st;
  st.d_tel = 0.5;
  const ObjectiveBreakdown obj = Evaluate(inst, config, st);
  EXPECT_NEAR(obj.social_direct, 0.6, 1e-5);
  EXPECT_NEAR(obj.social_indirect, 0.0, 1e-9);
}

TEST(ObjectiveTest, PerUserUtilitiesSumToTotal) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config = MakeSavgOptimalConfig();
  const auto per_user = EvaluatePerUser(inst, config);
  double total = 0.0;
  for (double u : per_user) total += u;
  // Sum of directed per-user utilities equals the aggregate Total() since
  // each pair's two directions land on the two endpoints.
  EXPECT_NEAR(total, Evaluate(inst, config).Total(), 1e-5);
}

TEST(ObjectiveTest, PerUserDirectedAsymmetry) {
  // tau(D,A,c5) = 0.25 vs tau(A,D,c5) = 0.2: when A and D co-display c5,
  // Dave gains more than Alice from that pair.
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config(4, 3, 5);
  ASSERT_TRUE(config.Set(kAlice, 0, 4).ok());
  ASSERT_TRUE(config.Set(kDave, 0, 4).ok());
  const auto per_user = EvaluatePerUser(inst, config);
  // Alice: 0.5*1.0 + 0.5*0.2; Dave: 0.5*0.95 + 0.5*0.25.
  EXPECT_NEAR(per_user[kAlice], 0.6, 1e-5);
  EXPECT_NEAR(per_user[kDave], 0.6, 1e-5);
  // Social shares specifically:
  EXPECT_NEAR(per_user[kAlice] - 0.5 * 1.0, 0.1, 1e-5);
  EXPECT_NEAR(per_user[kDave] - 0.5 * 0.95, 0.125, 1e-5);
}

TEST(ObjectiveTest, ExtensionWeightsCommodity) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_commodity_values({2.0, 1.0, 1.0, 1.0, 1.0});  // c1 worth double
  Configuration config(4, 3, 5);
  ASSERT_TRUE(config.Set(kAlice, 0, 0).ok());
  EvaluateOptions opt;
  opt.use_extension_weights = true;
  EXPECT_NEAR(Evaluate(inst, config, opt).preference, 1.6, 1e-5);
  EXPECT_NEAR(Evaluate(inst, config).preference, 0.8, 1e-5);
}

TEST(ObjectiveTest, ExtensionWeightsSlots) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_slot_weights({3.0, 1.0, 1.0});
  Configuration config(4, 3, 5);
  ASSERT_TRUE(config.Set(kAlice, 0, 0).ok());
  ASSERT_TRUE(config.Set(kBob, 1, 1).ok());
  EvaluateOptions opt;
  opt.use_extension_weights = true;
  // Alice at slot 0 weighted 3x, Bob at slot 1 weighted 1x.
  EXPECT_NEAR(Evaluate(inst, config, opt).preference, 3 * 0.8 + 1.0, 1e-5);
}

TEST(ObjectiveTest, SizeConstraintViolation) {
  Configuration config(5, 1, 3);
  for (UserId u = 0; u < 4; ++u) ASSERT_TRUE(config.Set(u, 0, 0).ok());
  ASSERT_TRUE(config.Set(4, 0, 1).ok());
  EXPECT_EQ(SizeConstraintViolation(config, 2), 2);  // group of 4, cap 2
  EXPECT_EQ(SizeConstraintViolation(config, 4), 0);
  EXPECT_EQ(SizeConstraintViolation(config, 1), 3);
}

TEST(ObjectiveTest, ScaledTotalLambdaZeroFallsBackToPreference) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_lambda(0.0);
  Configuration config = MakeSavgOptimalConfig();
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  EXPECT_NEAR(obj.ScaledTotal(), obj.preference, 1e-9);
}

}  // namespace
}  // namespace savg
