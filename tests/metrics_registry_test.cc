// Tests of the central serving-metrics registry (src/metrics/registry.h):
// concurrent counter/gauge updates, streaming histogram quantile
// accuracy, handle stability across growth, and the dump formats.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "metrics/registry.h"
#include "metrics/timeseries.h"

namespace savg {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("a");
  a->Increment(3);
  // Creating many more metrics must not invalidate the first handle.
  for (int i = 0; i < 200; ++i) {
    registry.GetCounter("c" + std::to_string(i));
    registry.GetGauge("g" + std::to_string(i));
    registry.GetHistogram("h" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("a"), a);
  EXPECT_EQ(a->value(), 3);
  // Same name, different kind: distinct metric objects.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("a")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  Gauge* gauge = registry.GetGauge("depth");
  Histogram* histogram = registry.GetHistogram("latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Increment();
        gauge->Decrement();
        histogram->Observe(1e-3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  EXPECT_NEAR(histogram->mean(), 1e-3, 1e-6);
}

TEST(MetricsRegistryTest, HistogramQuantilesTrackUniformSample) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> sample(0.001, 0.101);
  for (int i = 0; i < 200000; ++i) histogram->Observe(sample(rng));
  // Geometric buckets give ~7% relative resolution; allow 15%.
  const double p50 = histogram->Quantile(0.5);
  const double p99 = histogram->Quantile(0.99);
  EXPECT_NEAR(p50, 0.051, 0.15 * 0.051);
  EXPECT_NEAR(p99, 0.100, 0.15 * 0.100);
  EXPECT_LT(p50, p99);
  EXPECT_NEAR(histogram->mean(), 0.051, 0.002);
}

TEST(MetricsRegistryTest, HistogramClampsOutOfRangeObservations) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  histogram->Observe(0.0);       // below kMin
  histogram->Observe(1e9);       // above kMax
  histogram->Observe(-1.0);      // nonsense input
  EXPECT_EQ(histogram->count(), 3);
  const double p99 = histogram->Quantile(0.99);
  EXPECT_GE(p99, 0.0);
  EXPECT_LE(p99, 2.0 * Histogram::kMax);
}

// Regression: sub-microsecond observations used to land in the first
// geometric bucket [kMin, ~1.07 kMin) — indistinguishable from real
// 100 ns samples, they dragged quantiles of all-fast histograms up to
// kMin's bucket upper bound. They now go to a dedicated underflow bucket
// whose upper bound is kMin itself.
TEST(MetricsRegistryTest, HistogramUnderflowBucketKeepsFastQuantilesLow) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  for (int i = 0; i < 1000; ++i) histogram->Observe(1e-9);  // ~1 ns
  EXPECT_EQ(histogram->count(), 1000);
  EXPECT_LE(histogram->Quantile(0.5), Histogram::kMin);
  EXPECT_LE(histogram->Quantile(0.99), Histogram::kMin);
  // A mixed stream still ranks underflow below genuine samples.
  for (int i = 0; i < 3000; ++i) histogram->Observe(1e-3);
  EXPECT_NEAR(histogram->Quantile(0.9), 1e-3, 0.15 * 1e-3);
  EXPECT_LE(histogram->Quantile(0.1), Histogram::kMin);
}

TEST(MetricsRegistryTest, SnapshotExpandsHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("serve.admitted")->Increment(5);
  registry.GetGauge("serve.queue_depth")->Set(2);
  Histogram* histogram = registry.GetHistogram("serve.latency.resolve");
  for (int i = 0; i < 100; ++i) histogram->Observe(0.01);

  bool saw_counter = false, saw_gauge = false;
  bool saw_count = false, saw_p50 = false, saw_p99 = false, saw_mean = false;
  for (const MetricSample& sample : registry.Snapshot()) {
    if (sample.name == "serve.admitted") {
      saw_counter = true;
      EXPECT_EQ(sample.value, 5.0);
    } else if (sample.name == "serve.queue_depth") {
      saw_gauge = true;
      EXPECT_EQ(sample.value, 2.0);
    } else if (sample.name == "serve.latency.resolve.count") {
      saw_count = true;
      EXPECT_EQ(sample.value, 100.0);
    } else if (sample.name == "serve.latency.resolve.p50") {
      saw_p50 = true;
      EXPECT_NEAR(sample.value, 0.01, 0.0015);
    } else if (sample.name == "serve.latency.resolve.p99") {
      saw_p99 = true;
    } else if (sample.name == "serve.latency.resolve.mean") {
      saw_mean = true;
      EXPECT_NEAR(sample.value, 0.01, 1e-5);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge);
  EXPECT_TRUE(saw_count && saw_p50 && saw_p99 && saw_mean);

  const std::string text = registry.TextDump();
  EXPECT_NE(text.find("serve.admitted"), std::string::npos);
  const std::string json = registry.JsonDump();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("serve.latency.resolve.p99"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramJsonDumpCarriesSumCountAndBuckets) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  for (int i = 0; i < 10; ++i) histogram->Observe(0.01);
  for (int i = 0; i < 5; ++i) histogram->Observe(0.05);

  const std::string json = registry.JsonDump();
  // Full histogram object: name + exact count and sum, not just the
  // flattened .count/.p50/.p99 pseudo-metrics.
  EXPECT_NE(json.find("\"histograms\": [{\"name\": \"latency\", "
                      "\"count\": 15, \"sum\": 0.35"),
            std::string::npos)
      << json;
  // Bucket objects carry their geometric upper bound; the two observed
  // values land in two distinct buckets whose counts sum to 15.
  const size_t buckets_pos = json.find("\"buckets\": [");
  ASSERT_NE(buckets_pos, std::string::npos);
  int64_t total = 0;
  int buckets_seen = 0;
  size_t pos = buckets_pos;
  while ((pos = json.find("{\"le\": ", pos)) != std::string::npos) {
    const double le = std::strtod(json.c_str() + pos + 7, nullptr);
    EXPECT_GT(le, 0.0);
    const size_t count_pos = json.find("\"count\": ", pos);
    ASSERT_NE(count_pos, std::string::npos);
    total += std::strtoll(json.c_str() + count_pos + 9, nullptr, 10);
    ++buckets_seen;
    ++pos;
  }
  EXPECT_EQ(buckets_seen, 2);
  EXPECT_EQ(total, 15);
}

TEST(MetricsRegistryTest, PrometheusDumpExposesAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("serve.admitted")->Increment(5);
  registry.GetGauge("serve.queue_depth")->Set(2);
  Histogram* histogram = registry.GetHistogram("serve.latency.resolve");
  for (int i = 0; i < 10; ++i) histogram->Observe(0.01);
  for (int i = 0; i < 5; ++i) histogram->Observe(0.05);

  const std::string prom = registry.PrometheusDump();
  EXPECT_NE(prom.find("# TYPE savg_serve_admitted counter\n"
                      "savg_serve_admitted 5\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE savg_serve_queue_depth gauge\n"
                      "savg_serve_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(
      prom.find("# TYPE savg_serve_latency_resolve_seconds histogram"),
      std::string::npos);
  // Cumulative buckets end at +Inf == _count, and _sum is exact.
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"} 15"), std::string::npos);
  EXPECT_NE(prom.find("savg_serve_latency_resolve_seconds_count 15"),
            std::string::npos);
  EXPECT_NE(prom.find("savg_serve_latency_resolve_seconds_sum 0.35"),
            std::string::npos);
}

TEST(MetricsRegistryTest, QuantileOfMatchesMemberQuantile) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> sample(0.001, 0.101);
  std::vector<int64_t> buckets(Histogram::kBuckets + 1, 0);
  for (int i = 0; i < 50000; ++i) {
    const double v = sample(rng);
    histogram->Observe(v);
    ++buckets[Histogram::BucketIndex(v)];
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(Histogram::QuantileOf(buckets, q),
                     histogram->Quantile(q))
        << "q=" << q;
  }
}

// --- MetricsTimeSeries ------------------------------------------------

TEST(MetricsTimeSeriesTest, CapturesCounterDeltasAndRates) {
  MetricsRegistry registry;
  MetricsTimeSeries series(&registry);
  Counter* hits = registry.GetCounter("hits");

  hits->Increment(10);
  series.CaptureNow(/*interval_seconds=*/2.0);
  hits->Increment(30);
  series.CaptureNow(/*interval_seconds=*/2.0);

  // Last window: only the 30 increments since the previous capture.
  const WindowedSnapshot last = series.Aggregate(1);
  EXPECT_EQ(last.windows, 1);
  EXPECT_EQ(last.CounterDelta("hits"), 30);
  EXPECT_NEAR(last.CounterRate("hits"), 15.0, 1e-9);
  EXPECT_EQ(last.CounterDelta("no.such.metric"), 0);

  // Both windows merged: the full 40 over 4 seconds.
  const WindowedSnapshot both = series.Aggregate(2);
  EXPECT_EQ(both.windows, 2);
  EXPECT_NEAR(both.seconds, 4.0, 1e-9);
  EXPECT_EQ(both.CounterDelta("hits"), 40);
  EXPECT_NEAR(both.CounterRate("hits"), 10.0, 1e-9);
  EXPECT_EQ(series.capture_count(), 2);
}

TEST(MetricsTimeSeriesTest, GaugesReportLastAndMax) {
  MetricsRegistry registry;
  MetricsTimeSeries series(&registry);
  Gauge* depth = registry.GetGauge("depth");

  depth->Set(9);
  series.CaptureNow(1.0);
  depth->Set(3);
  series.CaptureNow(1.0);

  const WindowedSnapshot last = series.Aggregate(1);
  EXPECT_EQ(last.GaugeLast("depth"), 3);
  EXPECT_EQ(last.GaugeMax("depth"), 3);
  const WindowedSnapshot both = series.Aggregate(2);
  EXPECT_EQ(both.GaugeLast("depth"), 3);  // most recent capture wins
  EXPECT_EQ(both.GaugeMax("depth"), 9);   // spike retained
}

TEST(MetricsTimeSeriesTest, WindowedHistogramQuantilesSeeOnlyTheWindow) {
  MetricsRegistry registry;
  MetricsTimeSeries series(&registry);
  Histogram* latency = registry.GetHistogram("latency");

  // Window 1: fast requests. Window 2: slow ones.
  for (int i = 0; i < 1000; ++i) latency->Observe(0.01);
  series.CaptureNow(1.0);
  for (int i = 0; i < 1000; ++i) latency->Observe(0.08);
  series.CaptureNow(1.0);

  // The lifetime histogram mixes both; the last window must not.
  const WindowedSnapshot last = series.Aggregate(1);
  const WindowedSnapshot::HistogramRow* row = last.FindHistogram("latency");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 1000);
  EXPECT_NEAR(row->mean, 0.08, 1e-6);
  EXPECT_NEAR(row->p50, 0.08, 0.15 * 0.08);
  EXPECT_NEAR(row->rate, 1000.0, 1e-6);

  // Merging both windows recovers the lifetime mixture.
  const WindowedSnapshot both = series.Aggregate(2);
  row = both.FindHistogram("latency");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 2000);
  EXPECT_NEAR(row->mean, 0.045, 1e-6);
  EXPECT_NEAR(row->p50, latency->Quantile(0.5), 1e-12);
}

TEST(MetricsTimeSeriesTest, RingEvictsOldWindows) {
  MetricsRegistry registry;
  TimeSeriesOptions options;
  options.windows = 4;
  MetricsTimeSeries series(&registry, options);
  Counter* hits = registry.GetCounter("hits");
  for (int i = 0; i < 10; ++i) {
    hits->Increment(1);
    series.CaptureNow(1.0);
  }
  // Only the last 4 windows are retained, however many are asked for.
  const WindowedSnapshot all = series.Aggregate(100);
  EXPECT_EQ(all.windows, 4);
  EXPECT_EQ(all.CounterDelta("hits"), 4);
  EXPECT_EQ(series.capture_count(), 10);
}

TEST(MetricsTimeSeriesTest, JsonDumpCarriesAllSections) {
  MetricsRegistry registry;
  MetricsTimeSeries series(&registry);
  registry.GetCounter("hits")->Increment(3);
  registry.GetGauge("depth")->Set(2);
  registry.GetHistogram("latency")->Observe(0.01);
  series.CaptureNow(2.0);

  const std::string json = series.Aggregate(1).JsonDump();
  EXPECT_NE(json.find("\"windows\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\": 2"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"hits\", \"delta\": 3, \"rate\": 1.5}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"depth\", \"last\": 2, \"max\": 2}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"latency\", \"count\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace savg
