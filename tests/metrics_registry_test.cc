// Tests of the central serving-metrics registry (src/metrics/registry.h):
// concurrent counter/gauge updates, streaming histogram quantile
// accuracy, handle stability across growth, and the dump formats.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "metrics/registry.h"

namespace savg {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("a");
  a->Increment(3);
  // Creating many more metrics must not invalidate the first handle.
  for (int i = 0; i < 200; ++i) {
    registry.GetCounter("c" + std::to_string(i));
    registry.GetGauge("g" + std::to_string(i));
    registry.GetHistogram("h" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("a"), a);
  EXPECT_EQ(a->value(), 3);
  // Same name, different kind: distinct metric objects.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("a")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  Gauge* gauge = registry.GetGauge("depth");
  Histogram* histogram = registry.GetHistogram("latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Increment();
        gauge->Decrement();
        histogram->Observe(1e-3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  EXPECT_NEAR(histogram->mean(), 1e-3, 1e-6);
}

TEST(MetricsRegistryTest, HistogramQuantilesTrackUniformSample) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> sample(0.001, 0.101);
  for (int i = 0; i < 200000; ++i) histogram->Observe(sample(rng));
  // Geometric buckets give ~7% relative resolution; allow 15%.
  const double p50 = histogram->Quantile(0.5);
  const double p99 = histogram->Quantile(0.99);
  EXPECT_NEAR(p50, 0.051, 0.15 * 0.051);
  EXPECT_NEAR(p99, 0.100, 0.15 * 0.100);
  EXPECT_LT(p50, p99);
  EXPECT_NEAR(histogram->mean(), 0.051, 0.002);
}

TEST(MetricsRegistryTest, HistogramClampsOutOfRangeObservations) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  histogram->Observe(0.0);       // below kMin
  histogram->Observe(1e9);       // above kMax
  histogram->Observe(-1.0);      // nonsense input
  EXPECT_EQ(histogram->count(), 3);
  const double p99 = histogram->Quantile(0.99);
  EXPECT_GE(p99, 0.0);
  EXPECT_LE(p99, 2.0 * Histogram::kMax);
}

// Regression: sub-microsecond observations used to land in the first
// geometric bucket [kMin, ~1.07 kMin) — indistinguishable from real
// 100 ns samples, they dragged quantiles of all-fast histograms up to
// kMin's bucket upper bound. They now go to a dedicated underflow bucket
// whose upper bound is kMin itself.
TEST(MetricsRegistryTest, HistogramUnderflowBucketKeepsFastQuantilesLow) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("latency");
  for (int i = 0; i < 1000; ++i) histogram->Observe(1e-9);  // ~1 ns
  EXPECT_EQ(histogram->count(), 1000);
  EXPECT_LE(histogram->Quantile(0.5), Histogram::kMin);
  EXPECT_LE(histogram->Quantile(0.99), Histogram::kMin);
  // A mixed stream still ranks underflow below genuine samples.
  for (int i = 0; i < 3000; ++i) histogram->Observe(1e-3);
  EXPECT_NEAR(histogram->Quantile(0.9), 1e-3, 0.15 * 1e-3);
  EXPECT_LE(histogram->Quantile(0.1), Histogram::kMin);
}

TEST(MetricsRegistryTest, SnapshotExpandsHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("serve.admitted")->Increment(5);
  registry.GetGauge("serve.queue_depth")->Set(2);
  Histogram* histogram = registry.GetHistogram("serve.latency.resolve");
  for (int i = 0; i < 100; ++i) histogram->Observe(0.01);

  bool saw_counter = false, saw_gauge = false;
  bool saw_count = false, saw_p50 = false, saw_p99 = false, saw_mean = false;
  for (const MetricSample& sample : registry.Snapshot()) {
    if (sample.name == "serve.admitted") {
      saw_counter = true;
      EXPECT_EQ(sample.value, 5.0);
    } else if (sample.name == "serve.queue_depth") {
      saw_gauge = true;
      EXPECT_EQ(sample.value, 2.0);
    } else if (sample.name == "serve.latency.resolve.count") {
      saw_count = true;
      EXPECT_EQ(sample.value, 100.0);
    } else if (sample.name == "serve.latency.resolve.p50") {
      saw_p50 = true;
      EXPECT_NEAR(sample.value, 0.01, 0.0015);
    } else if (sample.name == "serve.latency.resolve.p99") {
      saw_p99 = true;
    } else if (sample.name == "serve.latency.resolve.mean") {
      saw_mean = true;
      EXPECT_NEAR(sample.value, 0.01, 1e-5);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge);
  EXPECT_TRUE(saw_count && saw_p50 && saw_p99 && saw_mean);

  const std::string text = registry.TextDump();
  EXPECT_NE(text.find("serve.admitted"), std::string::npos);
  const std::string json = registry.JsonDump();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("serve.latency.resolve.p99"), std::string::npos);
}

}  // namespace
}  // namespace savg
