#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/fmg.h"
#include "baselines/grf.h"
#include "baselines/ip_exact.h"
#include "baselines/per.h"
#include "baselines/sdp.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "paper_example.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, uint64_t seed,
                             DatasetKind kind = DatasetKind::kYelp) {
  DatasetParams params;
  params.kind = kind;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.seed = seed;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

TEST(BaselinesTest, AllProduceValidConfigurations) {
  SvgicInstance inst = RandomInstance(10, 14, 4, 1);
  auto per = RunPersonalizedTopK(inst);
  auto fmg = RunFmg(inst);
  auto sdp = RunSdp(inst);
  auto grf = RunGrf(inst);
  for (const auto* r : {&per, &fmg, &sdp, &grf}) {
    ASSERT_TRUE(r->ok()) << r->status();
    EXPECT_TRUE((*r)->CheckValid().ok());
  }
}

TEST(BaselinesTest, PerMaximizesPreferenceUtility) {
  // PER is the exact optimizer of the pure-preference objective, so its
  // preference part must dominate every other method's.
  SvgicInstance inst = RandomInstance(8, 12, 3, 2);
  auto per = RunPersonalizedTopK(inst);
  auto fmg = RunFmg(inst);
  auto sdp = RunSdp(inst);
  auto grf = RunGrf(inst);
  ASSERT_TRUE(per.ok() && fmg.ok() && sdp.ok() && grf.ok());
  const double p_per = Evaluate(inst, *per).preference;
  EXPECT_GE(p_per, Evaluate(inst, *fmg).preference - 1e-9);
  EXPECT_GE(p_per, Evaluate(inst, *sdp).preference - 1e-9);
  EXPECT_GE(p_per, Evaluate(inst, *grf).preference - 1e-9);
}

TEST(BaselinesTest, FmgDisplaysOneBundleToEveryone) {
  SvgicInstance inst = RandomInstance(9, 12, 3, 3);
  auto fmg = RunFmg(inst);
  ASSERT_TRUE(fmg.ok());
  for (SlotId s = 0; s < 3; ++s) {
    const ItemId c = fmg->At(0, s);
    for (UserId u = 1; u < 9; ++u) EXPECT_EQ(fmg->At(u, s), c);
  }
}

TEST(BaselinesTest, FmgFairnessLiftsWorstUser) {
  // With a strong fairness weight, the worst-off user's preference sum
  // should not decrease relative to the no-fairness bundle.
  SvgicInstance inst = RandomInstance(8, 15, 3, 4);
  FmgOptions none;
  none.fairness_weight = 0.0;
  FmgOptions strong;
  strong.fairness_weight = 5.0;
  auto a = RunFmg(inst, none);
  auto b = RunFmg(inst, strong);
  ASSERT_TRUE(a.ok() && b.ok());
  auto min_user_pref = [&](const Configuration& config) {
    double worst = 1e300;
    for (UserId u = 0; u < inst.num_users(); ++u) {
      double acc = 0.0;
      for (SlotId s = 0; s < inst.num_slots(); ++s) {
        acc += inst.p(u, config.At(u, s));
      }
      worst = std::min(worst, acc);
    }
    return worst;
  };
  EXPECT_GE(min_user_pref(*b), min_user_pref(*a) - 1e-9);
}

TEST(BaselinesTest, SdpGroupsAreStaticAcrossSlots) {
  SvgicInstance inst = RandomInstance(10, 12, 3, 5);
  Partition partition;
  auto sdp = RunSdp(inst, SdpOptions{}, &partition);
  ASSERT_TRUE(sdp.ok());
  // Users in one community share their whole item sequence.
  for (UserId u = 0; u < 10; ++u) {
    for (UserId v = u + 1; v < 10; ++v) {
      if (partition.community[u] != partition.community[v]) continue;
      for (SlotId s = 0; s < 3; ++s) {
        EXPECT_EQ(sdp->At(u, s), sdp->At(v, s));
      }
    }
  }
}

TEST(BaselinesTest, GrfIgnoresTopologyAndGroupsByTaste) {
  // Two users with identical preference rows end in the same cluster even
  // if they are not friends.
  SocialGraph g(4);
  ASSERT_TRUE(g.AddUndirectedEdge(0, 2).ok());  // 0-2 friends, 0-1 not
  SvgicInstance inst(g, 6, 2, 0.5);
  for (ItemId c = 0; c < 6; ++c) {
    inst.set_p(0, c, c == 1 ? 0.9 : 0.05);
    inst.set_p(1, c, c == 1 ? 0.9 : 0.05);  // same taste as user 0
    inst.set_p(2, c, c == 4 ? 0.9 : 0.05);
    inst.set_p(3, c, c == 4 ? 0.9 : 0.05);
  }
  inst.FinalizePairs();
  Partition partition;
  GrfOptions opt;
  opt.num_clusters = 2;
  auto grf = RunGrf(inst, opt, &partition);
  ASSERT_TRUE(grf.ok());
  EXPECT_EQ(partition.community[0], partition.community[1]);
  EXPECT_EQ(partition.community[2], partition.community[3]);
  EXPECT_NE(partition.community[0], partition.community[2]);
}

TEST(BaselinesTest, IpMatchesBruteForceOnRandomTinyInstances) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    SvgicInstance inst = RandomInstance(4, 5, 2, seed);
    auto ip = SolveIpExact(inst);
    auto bf = SolveBruteForce(inst);
    ASSERT_TRUE(ip.ok()) << ip.status();
    ASSERT_TRUE(bf.ok()) << bf.status();
    ASSERT_TRUE(ip->proven_optimal);
    EXPECT_NEAR(ip->scaled_objective, bf->scaled_objective, 1e-5)
        << "seed " << seed;
  }
}

TEST(BaselinesTest, IpUnderNodeLimitStillReturnsIncumbent) {
  SvgicInstance inst = RandomInstance(5, 6, 2, 41);
  IpExactOptions opt;
  opt.mip.max_nodes = 3;
  auto ip = SolveIpExact(inst, opt);
  ASSERT_TRUE(ip.ok()) << ip.status();
  EXPECT_TRUE(ip->config.CheckValid().ok());
  // The AVG-D seed guarantees a reasonable incumbent even with 3 nodes.
  EXPECT_GT(ip->scaled_objective, 0.0);
}

TEST(BaselinesTest, IpRootWarmStartReducesRootPivots) {
  // IpExactOptions::root_warm_start: the root basis of a previous solve on
  // the same expanded-LP shape (here: the same instance at another lambda)
  // warm-starts the next root LP instead of re-solving it cold.
  SvgicInstance inst = RandomInstance(5, 7, 2, 61);
  auto cold = SolveIpExact(inst);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->root_warm_started);
  ASSERT_FALSE(cold->root_basis.Empty());
  ASSERT_GT(cold->root_simplex_iterations, 0);

  inst.set_lambda(0.65);  // objective changes, LP shape stays
  IpExactOptions warm_opt;
  warm_opt.root_warm_start = &cold->root_basis;
  auto warm = SolveIpExact(inst, warm_opt);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->root_warm_started);
  EXPECT_LT(warm->root_simplex_iterations, cold->root_simplex_iterations);

  auto reference = SolveIpExact(inst);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(warm->proven_optimal);
  ASSERT_TRUE(reference->proven_optimal);
  EXPECT_NEAR(warm->scaled_objective, reference->scaled_objective, 1e-6);
}

TEST(BaselinesTest, BruteForceLimitsReported) {
  SvgicInstance inst = RandomInstance(6, 8, 3, 51);
  BruteForceOptions opt;
  opt.max_configurations = 100;
  opt.time_limit_seconds = 0.001;
  auto bf = SolveBruteForce(inst, opt);
  EXPECT_FALSE(bf.ok());
  EXPECT_EQ(bf.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace savg
