#include <gtest/gtest.h>

#include <sstream>

#include "core/io.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(IoTest, InstanceRoundTripPreservesEverything) {
  SvgicInstance inst = MakePaperExample(0.4);
  inst.set_commodity_values({1.0f, 2.0f, 1.0f, 1.0f, 0.5f});
  inst.set_slot_weights({3.0f, 1.0f, 1.0f});
  std::ostringstream out;
  ASSERT_TRUE(WriteInstance(inst, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadInstance(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_users(), 4);
  EXPECT_EQ(loaded->num_items(), 5);
  EXPECT_EQ(loaded->num_slots(), 3);
  EXPECT_NEAR(loaded->lambda(), 0.4, 1e-9);
  EXPECT_EQ(loaded->graph().num_edges(), 8);
  for (UserId u = 0; u < 4; ++u) {
    for (ItemId c = 0; c < 5; ++c) {
      EXPECT_NEAR(loaded->p(u, c), inst.p(u, c), 1e-6);
    }
  }
  for (EdgeId e = 0; e < 8; ++e) {
    for (ItemId c = 0; c < 5; ++c) {
      EXPECT_NEAR(loaded->TauOf(e, c), inst.TauOf(e, c), 1e-6);
    }
  }
  EXPECT_NEAR(loaded->CommodityOf(1), 2.0, 1e-6);
  EXPECT_NEAR(loaded->SlotWeightOf(0), 3.0, 1e-6);
  // Same objective on the same configuration.
  const Configuration config = MakeSavgOptimalConfig();
  EXPECT_NEAR(Evaluate(*loaded, config).Total(),
              Evaluate(inst, config).Total(), 1e-6);
}

TEST(IoTest, GeneratedInstanceRoundTrip) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 12;
  params.num_items = 30;
  params.num_slots = 4;
  params.seed = 3;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteInstance(*inst, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadInstance(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->pairs().size(), inst->pairs().size());
}

TEST(IoTest, ConfigurationRoundTrip) {
  const Configuration config = MakeAvgTable7Config();
  std::ostringstream out;
  ASSERT_TRUE(WriteConfiguration(config, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadConfiguration(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (UserId u = 0; u < 4; ++u) {
    for (SlotId s = 0; s < 3; ++s) {
      EXPECT_EQ(loaded->At(u, s), config.At(u, s));
    }
  }
}

TEST(IoTest, PartialConfigurationRoundTrip) {
  Configuration config(3, 2, 4);
  ASSERT_TRUE(config.Set(1, 0, 2).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteConfiguration(config, &out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadConfiguration(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->At(1, 0), 2);
  EXPECT_EQ(loaded->At(0, 0), kNoItem);
  EXPECT_EQ(loaded->NumUnassigned(), 5);
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a comment\n"
      "svgic 1\n"
      "\n"
      "dims 2 3 2 0.5\n"
      "edge 0 1\n"
      "p 0 1 0.9\n"
      "tau 0 1 0.25\n"
      "end\n");
  auto loaded = ReadInstance(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_NEAR(loaded->p(0, 1), 0.9, 1e-6);
  EXPECT_NEAR(loaded->TauOf(0, 1), 0.25, 1e-6);
}

TEST(IoTest, RejectsTruncatedFile) {
  std::istringstream in("svgic 1\ndims 2 3 2 0.5\n");  // missing end
  EXPECT_FALSE(ReadInstance(&in).ok());
}

TEST(IoTest, RejectsUnknownRecord) {
  std::istringstream in("svgic 1\ndims 2 3 2 0.5\nbogus 1 2\nend\n");
  EXPECT_FALSE(ReadInstance(&in).ok());
}

TEST(IoTest, RejectsOutOfRangeEntries) {
  std::istringstream in("svgic 1\ndims 2 3 2 0.5\np 5 0 0.5\nend\n");
  EXPECT_FALSE(ReadInstance(&in).ok());
  std::istringstream in2("svgic 1\ndims 2 3 2 0.5\ntau 0 0 0.5\nend\n");
  // tau references edge 0 but no edges exist.
  EXPECT_FALSE(ReadInstance(&in2).ok());
}

TEST(IoTest, RejectsBadVersion) {
  std::istringstream in("svgic 99\ndims 2 3 2 0.5\nend\n");
  EXPECT_FALSE(ReadInstance(&in).ok());
}

TEST(IoTest, MissingFileIsNotFound) {
  auto r = ReadInstanceFromFile("/nonexistent/path/instance.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(IoTest, FileRoundTripViaTempFile) {
  SvgicInstance inst = MakePaperExample(0.5);
  const std::string path = testing::TempDir() + "/savg_io_test_instance.tsv";
  ASSERT_TRUE(WriteInstanceToFile(inst, path).ok());
  auto loaded = ReadInstanceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_users(), 4);
}

}  // namespace
}  // namespace savg
