// Tests of the observability subsystem (src/obs/): TraceContext span
// nesting and bridged children, TraceScope's no-op contract, Tracer
// sampling / ring retention / stage-histogram folding / slow-query
// accounting, TraceSink rotation, the structured log line format, and the
// trace exporters (Chrome trace-event JSON, text tree, JSONL).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/registry.h"
#include "obs/structured_log.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"

namespace savg {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "savg_trace_test_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- TraceContext ----------------------------------------------------------

TEST(TraceContextTest, SpansNestViaTheOpenStack) {
  TraceContext ctx(7, 42, 3, "resolve");
  EXPECT_EQ(ctx.trace().trace_id, 7u);
  EXPECT_EQ(ctx.trace().request_id, 42u);
  EXPECT_EQ(ctx.trace().session_id, 3u);
  EXPECT_GT(ctx.trace().start_unix_micros, 0);
  EXPECT_EQ(ctx.CurrentSpan(), -1);

  const int outer = ctx.StartSpan("outer");
  EXPECT_EQ(ctx.CurrentSpan(), outer);
  const int inner = ctx.StartSpan("inner");
  EXPECT_EQ(ctx.trace().spans[inner].parent, outer);
  ctx.AddCounter(-1, "pivots", 12);  // -1 = innermost open
  ctx.AddLabel(inner, "path", "incremental");
  ctx.EndSpan(inner);
  EXPECT_EQ(ctx.CurrentSpan(), outer);
  ctx.EndSpan(outer);
  EXPECT_EQ(ctx.CurrentSpan(), -1);

  const TraceSpan& in = ctx.trace().spans[inner];
  ASSERT_EQ(in.counters.size(), 1u);
  EXPECT_EQ(in.counters[0].first, "pivots");
  EXPECT_EQ(in.counters[0].second, 12);
  ASSERT_EQ(in.labels.size(), 1u);
  EXPECT_EQ(in.labels[0].second, "incremental");
  EXPECT_GE(in.start_nanos, ctx.trace().spans[outer].start_nanos);
  EXPECT_GE(in.duration_nanos, 0);

  // Explicitly-timed spans record verbatim.
  const int timed = ctx.AddSpan("timed", -1, 100, 50);
  EXPECT_EQ(ctx.trace().spans[timed].start_nanos, 100);
  EXPECT_EQ(ctx.trace().spans[timed].duration_nanos, 50);
}

TEST(TraceContextTest, BridgedChildrenLayEndToEndFromTheParentStart) {
  TraceContext ctx(1, 1, 0, "resolve");
  {
    ScopedCurrentTrace current(&ctx);
    TraceScope solve("lp.solve");
    ASSERT_TRUE(solve.active());
    const int a = solve.BridgeChild("lp.ftran", 0.002);
    const int b = solve.BridgeChild("lp.btran", 0.001);
    const int c = solve.BridgeChild("lp.factor", 0.0);  // zero-duration kept
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    ASSERT_GE(c, 0);
    const std::vector<TraceSpan>& spans = ctx.trace().spans;
    const int parent = spans[a].parent;
    EXPECT_EQ(spans[parent].name, "lp.solve");
    EXPECT_TRUE(spans[a].bridged);
    // Children tile the parent's time from its start, in call order.
    EXPECT_EQ(spans[a].start_nanos, spans[parent].start_nanos);
    EXPECT_EQ(spans[a].duration_nanos, 2000000);
    EXPECT_EQ(spans[b].start_nanos,
              spans[a].start_nanos + spans[a].duration_nanos);
    EXPECT_EQ(spans[c].start_nanos,
              spans[b].start_nanos + spans[b].duration_nanos);
    EXPECT_EQ(spans[c].duration_nanos, 0);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(TraceContextTest, TraceScopeIsANoOpWithoutACurrentTrace) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  TraceScope scope("lp.solve");
  EXPECT_FALSE(scope.active());
  scope.Counter("pivots", 5);
  scope.Label("path", "full");
  EXPECT_EQ(scope.BridgeChild("lp.ftran", 0.5), -1);
}

// --- Tracer ----------------------------------------------------------------

TEST(TracerTest, SamplesOneInNAndAlwaysForced) {
  MetricsRegistry metrics;
  TracerOptions options;
  options.sample_every = 4;
  Tracer tracer(&metrics, options);
  int sampled = 0;
  for (uint64_t i = 0; i < 16; ++i) {
    if (tracer.Sample(false, i, 0, "resolve") != nullptr) ++sampled;
  }
  EXPECT_EQ(sampled, 4);  // seq 0, 4, 8, 12
  // Forced requests trace regardless and do not consume the sample
  // sequence.
  auto forced = tracer.Sample(true, 99, 0, "resolve");
  ASSERT_NE(forced, nullptr);
  EXPECT_TRUE(forced->trace().forced);
  EXPECT_EQ(metrics.GetCounter("trace.forced")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("trace.sampled")->value(), 4);

  // sample_every = 0: only forced requests trace.
  TracerOptions off;
  off.sample_every = 0;
  Tracer none(&metrics, off);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(none.Sample(false, i, 0, "resolve"), nullptr);
  }
  EXPECT_NE(none.Sample(true, 8, 0, "resolve"), nullptr);
}

TEST(TracerTest, RingKeepsTheNewestTraces) {
  MetricsRegistry metrics;
  TracerOptions options;
  options.sample_every = 1;
  options.buffer_traces = 4;
  options.slow_seconds = 0.0;
  Tracer tracer(&metrics, options);
  for (uint64_t i = 0; i < 10; ++i) {
    auto ctx = tracer.Sample(false, i, 0, "resolve");
    ASSERT_NE(ctx, nullptr);
    tracer.Finish(ctx, "ok");
  }
  const std::vector<Trace> traces = tracer.LastTraces(100);
  ASSERT_EQ(traces.size(), 4u);  // evicted down to the buffer bound
  // Oldest first, and the newest request is retained.
  EXPECT_LT(traces.front().request_id, traces.back().request_id);
  EXPECT_EQ(traces.back().request_id, 9u);
  EXPECT_EQ(tracer.LastTraces(2).size(), 2u);
  EXPECT_EQ(tracer.LastTraces(2).back().request_id, 9u);
}

TEST(TracerTest, FinishFoldsStageHistograms) {
  MetricsRegistry metrics;
  TracerOptions options;
  options.sample_every = 1;
  Tracer tracer(&metrics, options);
  auto ctx = tracer.Sample(false, 1, 0, "resolve");
  ASSERT_NE(ctx, nullptr);
  ctx->AddSpan("admission.wait", -1, 0, 1000000);
  ctx->AddSpan("lp.presolve", -1, 0, 2000000);
  ctx->AddSpan("lp.solve", -1, 0, 3000000);
  ctx->AddSpan("shard.solve", -1, 0, 4000000);
  ctx->AddSpan("csf.round", -1, 0, 5000000);
  ctx->AddSpan("coalesce.defer", -1, 0, 6000000);
  ctx->AddSpan("session.apply", -1, 0, 7000000);  // no stage histogram
  tracer.Finish(ctx, "ok");
  EXPECT_EQ(metrics.GetHistogram("serve.stage.admission")->count(), 1);
  EXPECT_EQ(metrics.GetHistogram("serve.stage.presolve")->count(), 1);
  EXPECT_EQ(metrics.GetHistogram("serve.stage.solve")->count(), 2);
  EXPECT_EQ(metrics.GetHistogram("serve.stage.round")->count(), 1);
  EXPECT_EQ(metrics.GetHistogram("serve.stage.coalesce")->count(), 1);
  EXPECT_NEAR(metrics.GetHistogram("serve.stage.solve")->mean(), 0.0035,
              1e-4);
}

TEST(TracerTest, SlowRequestsReachTheSlowLogEvenWhenUnsampled) {
  const std::string path = TempPath("slow.jsonl");
  std::remove(path.c_str());
  MetricsRegistry metrics;
  TracerOptions options;
  options.sample_every = 1;
  options.slow_seconds = 0.001;
  options.slow_log_path = path;
  Tracer tracer(&metrics, options);

  // A sampled trace over the threshold writes its full span JSONL line.
  auto ctx = tracer.Sample(false, 5, 2, "resolve");
  ASSERT_NE(ctx, nullptr);
  const int span = ctx->StartSpan("session.apply");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ctx->EndSpan(span);
  tracer.Finish(ctx, "ok");
  EXPECT_EQ(metrics.GetCounter("trace.slow")->value(), 1);

  // An unsampled slow request still leaves a (span-less) record.
  tracer.FinishUntraced(6, 2, "resolve", 0.5, "ok");
  EXPECT_EQ(metrics.GetCounter("trace.slow")->value(), 2);
  EXPECT_EQ(tracer.sink().lines_written(), 2);

  const std::string log = ReadFile(path);
  EXPECT_NE(log.find("\"request_id\": 5"), std::string::npos);
  EXPECT_NE(log.find("session.apply"), std::string::npos);
  EXPECT_NE(log.find("\"request_id\": 6"), std::string::npos);
  EXPECT_NE(log.find("\"total_ms\": 500.0000"), std::string::npos);

  // Fast requests never touch the log.
  tracer.FinishUntraced(7, 2, "resolve", 0.0001, "ok");
  EXPECT_EQ(tracer.sink().lines_written(), 2);
  std::remove(path.c_str());
}

// --- TraceSink -------------------------------------------------------------

TEST(TraceSinkTest, RotatesGenerationsAtTheSizeBound) {
  const std::string path = TempPath("rotate.jsonl");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
  TraceSinkOptions options;
  options.path = path;
  options.max_bytes = 128;
  options.max_files = 3;
  TraceSink sink(options);
  ASSERT_TRUE(sink.enabled());
  const std::string line(60, 'x');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sink.WriteLine(line + std::to_string(i)).ok());
  }
  EXPECT_EQ(sink.lines_written(), 8);
  EXPECT_GE(sink.rotations(), 2);
  // The live file stays under the bound; the previous generation exists.
  EXPECT_LE(ReadFile(path).size(), options.max_bytes);
  EXPECT_FALSE(ReadFile(path + ".1").empty());
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
}

TEST(TraceSinkTest, EmptyPathDisablesTheSink) {
  TraceSink sink(TraceSinkOptions{});
  EXPECT_FALSE(sink.enabled());
  EXPECT_TRUE(sink.WriteLine("ignored").ok());
  EXPECT_EQ(sink.lines_written(), 0);
}

// --- Structured log --------------------------------------------------------

TEST(StructuredLogTest, FormatsAndQuotesFields) {
  const std::string line =
      FormatEvent("serve.slow", LogFields()
                                    .Add("trace_id", int64_t{42})
                                    .Add("command", "resolve")
                                    .Add("message", "queue full (256)")
                                    .Add("quoted", "say \"hi\"")
                                    .Add("total_ms", 1.5));
  EXPECT_EQ(line,
            "event=serve.slow trace_id=42 command=resolve "
            "message=\"queue full (256)\" quoted=\"say \\\"hi\\\"\" "
            "total_ms=1.5");
  EXPECT_EQ(FormatEvent("serve.shutdown", LogFields()),
            "event=serve.shutdown");
}

// --- Exporters -------------------------------------------------------------

Trace MakeExportTrace() {
  Trace trace;
  trace.trace_id = 9;
  trace.request_id = 4;
  trace.session_id = 2;
  trace.name = "resolve";
  trace.status = "ok";
  trace.start_unix_micros = 1000000;
  trace.total_nanos = 4000000;
  TraceSpan apply;
  apply.name = "session.apply";
  apply.parent = -1;
  apply.start_nanos = 0;
  apply.duration_nanos = 4000000;
  apply.counters.emplace_back("pivots", 17);
  trace.spans.push_back(apply);
  TraceSpan solve;
  solve.name = "lp.solve";
  solve.parent = 0;
  solve.start_nanos = 1000000;
  solve.duration_nanos = 2000000;
  solve.bridged = true;
  solve.labels.emplace_back("path", "full");
  trace.spans.push_back(solve);
  return trace;
}

TEST(TraceExportTest, ChromeTraceJsonEmitsCompleteEventsPerSpan) {
  const std::string json = ChromeTraceJson({MakeExportTrace()});
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // Root event + one per span, all complete ("X") events on the trace's
  // tid within the session's pid.
  EXPECT_NE(json.find("\"name\": \"request:resolve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"session.apply\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"pivots\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"bridged\""), std::string::npos);
  // Span ts = trace wall-clock base + span offset, in microseconds.
  EXPECT_NE(json.find("\"ts\": 1001000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2000.000"), std::string::npos);
}

TEST(TraceExportTest, TextTreeIndentsChildrenAndMarksBridged) {
  const std::string text = TraceTextTree({MakeExportTrace()});
  EXPECT_NE(text.find("trace 9 request=4 session=2 resolve"),
            std::string::npos);
  EXPECT_NE(text.find("\n  session.apply"), std::string::npos);
  EXPECT_NE(text.find("\n    lp.solve ~2.0000ms"), std::string::npos);
  EXPECT_NE(text.find("pivots=17"), std::string::npos);
  EXPECT_NE(text.find("path=full"), std::string::npos);
}

TEST(TraceExportTest, JsonLineCarriesSpansAndAttributes) {
  const std::string line = TraceJsonLine(MakeExportTrace());
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"trace_id\": 9"), std::string::npos);
  EXPECT_NE(line.find("\"command\": \"resolve\""), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\": 4.0000"), std::string::npos);
  EXPECT_NE(line.find("\"name\": \"lp.solve\""), std::string::npos);
  EXPECT_NE(line.find("\"bridged\": true"), std::string::npos);
  EXPECT_NE(line.find("\"pivots\": 17"), std::string::npos);
}

}  // namespace
}  // namespace savg
