#include <gtest/gtest.h>

#include <cmath>

#include "core/lp_formulation.h"
#include "datagen/datasets.h"
#include "lp/basis_lu.h"
#include "lp/branch_and_bound.h"
#include "lp/capped_simplex.h"
#include "lp/dense_matrix.h"
#include "lp/kkt.h"
#include "lp/lp_model.h"
#include "lp/presolve.h"
#include "lp/simplex.h"
#include "lp/subgradient.h"
#include "paper_example.h"
#include "util/random.h"

namespace savg {
namespace {

TEST(DenseMatrixTest, IdentityInverse) {
  DenseMatrix id = DenseMatrix::Identity(4);
  auto inv = id.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(id.InverseResidual(*inv), 1e-12);
}

TEST(DenseMatrixTest, RandomInverse) {
  Rng rng(3);
  DenseMatrix m(6, 6);
  for (size_t r = 0; r < 6; ++r)
    for (size_t c = 0; c < 6; ++c) m.At(r, c) = rng.Uniform(-1, 1);
  for (size_t i = 0; i < 6; ++i) m.At(i, i) += 3.0;  // well-conditioned
  auto inv = m.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(m.InverseResidual(*inv), 1e-9);
}

TEST(DenseMatrixTest, SingularFails) {
  DenseMatrix m(2, 2, 1.0);  // rank 1
  EXPECT_FALSE(m.Inverse().ok());
}

TEST(DenseMatrixTest, MultiplyVector) {
  DenseMatrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 2) = 4;
  auto y = m.MultiplyVector({1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  auto z = m.TransposeMultiplyVector({1, 2});
  EXPECT_DOUBLE_EQ(z[2], 11.0);
}

// --- Simplex -----------------------------------------------------------

TEST(SimplexTest, TwoVariableTextbook) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4,0), obj 12.
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 3);
  int y = m.AddVariable(0, kLpInfinity, 2);
  m.AddRow(RowType::kLessEqual, 4, {{x, 1}, {y, 1}});
  m.AddRow(RowType::kLessEqual, 6, {{x, 1}, {y, 3}});
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 12.0, 1e-8);
  EXPECT_NEAR(sol->x[x], 4.0, 1e-8);
  EXPECT_NEAR(sol->x[y], 0.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + 2y s.t. x + y = 3, y <= 2 -> (1,2), obj 5.
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1);
  int y = m.AddVariable(0, 2, 2);
  m.AddRow(RowType::kEqual, 3, {{x, 1}, {y, 1}});
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 5.0, 1e-8);
  EXPECT_NEAR(sol->x[y], 2.0, 1e-8);
}

TEST(SimplexTest, GreaterEqualAndMinimize) {
  // min 2x + 3y s.t. x + y >= 4, x <= 3 -> (3,1), obj 9.
  LpModel m;
  m.SetMaximize(false);
  int x = m.AddVariable(0, 3, 2);
  int y = m.AddVariable(0, kLpInfinity, 3);
  m.AddRow(RowType::kGreaterEqual, 4, {{x, 1}, {y, 1}});
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 9.0, 1e-8);
  EXPECT_NEAR(sol->x[x], 3.0, 1e-8);
  EXPECT_NEAR(sol->x[y], 1.0, 1e-8);
}

TEST(SimplexTest, UpperBoundedVariablesOnly) {
  // max x + y with x <= 0.5, y <= 0.25, no rows.
  LpModel m;
  int x = m.AddVariable(0, 0.5, 1);
  int y = m.AddVariable(0, 0.25, 1);
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 0.75, 1e-9);
  EXPECT_NEAR(sol->x[x], 0.5, 1e-9);
  EXPECT_NEAR(sol->x[y], 0.25, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1);
  m.AddRow(RowType::kGreaterEqual, 5, {{x, 1}});
  auto sol = SolveLp(m);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1);
  m.AddRow(RowType::kGreaterEqual, 1, {{x, 1}});
  auto sol = SolveLp(m);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, NegativeRhsRows) {
  // max x s.t. -x <= -2 (i.e. x >= 2), x <= 5.
  LpModel m;
  int x = m.AddVariable(0, 5, 1);
  m.AddRow(RowType::kLessEqual, -2, {{x, -1}});
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 5.0, 1e-8);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Many redundant constraints through the same vertex.
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 1);
  int y = m.AddVariable(0, kLpInfinity, 1);
  for (int i = 1; i <= 8; ++i) {
    m.AddRow(RowType::kLessEqual, 2, {{x, 1.0}, {y, static_cast<double>(i)}});
  }
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 2.0, 1e-8);  // x=2, y=0
}

TEST(SimplexTest, TransportationProblem) {
  // Classic 2x3 transportation: supplies {20, 30}, demands {10, 25, 15},
  // costs row-major {2,4,5 / 3,1,7}. Min cost = 2*10+4*10+1*25+5*... check
  // via known optimum: ship (10,0,10) from s0 (cost 20+0+50), (0,25,5) from
  // s1 (cost 25+35) -> total 130? Let solver find it; validate against a
  // brute-force grid search instead.
  LpModel m;
  m.SetMaximize(false);
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  int v[2][3];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      v[i][j] = m.AddVariable(0, kLpInfinity, cost[i][j]);
  const double supply[2] = {20, 30};
  const double demand[3] = {10, 25, 15};
  for (int i = 0; i < 2; ++i) {
    m.AddRow(RowType::kLessEqual, supply[i],
             {{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}});
  }
  for (int j = 0; j < 3; ++j) {
    m.AddRow(RowType::kEqual, demand[j], {{v[0][j], 1}, {v[1][j], 1}});
  }
  auto sol = SolveLp(m);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_LE(sol->objective, 2 * 10 + 4 * 25 + 5 * 15 + 1);  // naive feasible
  EXPECT_NEAR(m.MaxViolation(sol->x), 0.0, 1e-7);
  // Optimal plan: s1 ships 25 to d1 and 5 to d0; s0 ships 5 to d0 and 15 to
  // d2. Cost = 25*1 + 5*3 + 5*2 + 15*5 = 125.
  EXPECT_NEAR(sol->objective, 125.0, 1e-6);
}

TEST(SimplexTest, RandomLpsAgainstVertexEnumeration) {
  // Property test: random 2-var LPs, compare against brute-force over a
  // fine grid (within grid tolerance).
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    LpModel m;
    const double c0 = rng.Uniform(-1, 2), c1 = rng.Uniform(-1, 2);
    int x = m.AddVariable(0, 1, c0);
    int y = m.AddVariable(0, 1, c1);
    const double a0 = rng.Uniform(0.2, 1), a1 = rng.Uniform(0.2, 1);
    const double rhs = rng.Uniform(0.5, 1.5);
    m.AddRow(RowType::kLessEqual, rhs, {{x, a0}, {y, a1}});
    auto sol = SolveLp(m);
    ASSERT_TRUE(sol.ok()) << sol.status();
    double best = -1e18;
    const int kGrid = 200;
    for (int i = 0; i <= kGrid; ++i) {
      for (int j = 0; j <= kGrid; ++j) {
        const double xv = static_cast<double>(i) / kGrid;
        const double yv = static_cast<double>(j) / kGrid;
        if (a0 * xv + a1 * yv <= rhs + 1e-12) {
          best = std::max(best, c0 * xv + c1 * yv);
        }
      }
    }
    EXPECT_GE(sol->objective, best - 1e-6);
    EXPECT_LE(sol->objective, best + 0.05);  // grid resolution slack
    EXPECT_NEAR(m.MaxViolation(sol->x), 0.0, 1e-7);
  }
}

// --- Sparse LU vs dense equivalence --------------------------------------

/// Random bounded LP with mixed row types; some vars unbounded above.
LpModel RandomLp(Rng* rng, int num_vars, int num_rows) {
  LpModel m;
  m.SetMaximize(rng->Bernoulli(0.5));
  for (int j = 0; j < num_vars; ++j) {
    const double lo = rng->Uniform(0, 0.5);
    const double hi = rng->Bernoulli(0.2) ? kLpInfinity
                                          : lo + rng->Uniform(0.5, 3.0);
    m.AddVariable(lo, hi, rng->Uniform(-2, 2));
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < num_vars; ++j) {
      if (rng->Bernoulli(0.5)) terms.push_back({j, rng->Uniform(0.1, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double roll = rng->Uniform(0, 1);
    // Mostly <= rows with generous rhs so most instances are feasible.
    const RowType type = roll < 0.7
                             ? RowType::kLessEqual
                             : (roll < 0.85 ? RowType::kGreaterEqual
                                            : RowType::kEqual);
    const double rhs = rng->Uniform(1.0, 2.0 + num_vars);
    m.AddRow(type, rhs, std::move(terms));
  }
  return m;
}

TEST(SimplexEquivalenceTest, SparseLuMatchesDenseOnRandomLps) {
  Rng rng(1234);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m = RandomLp(&rng, 4 + trial % 9, 2 + trial % 7);
    SimplexOptions sparse_opt;
    sparse_opt.basis = SimplexBasisType::kSparseLu;
    SimplexOptions dense_opt;
    dense_opt.basis = SimplexBasisType::kDense;
    auto sparse = SolveLp(m, sparse_opt);
    auto dense = SolveLp(m, dense_opt);
    ASSERT_EQ(sparse.ok(), dense.ok())
        << "trial " << trial << ": sparse " << sparse.status() << " dense "
        << dense.status();
    if (!sparse.ok()) {
      EXPECT_EQ(sparse.status().code(), dense.status().code());
      continue;
    }
    ++solved;
    EXPECT_NEAR(sparse->objective, dense->objective, 1e-6)
        << "trial " << trial;
    EXPECT_NEAR(m.MaxViolation(sparse->x), 0.0, 1e-6);
    EXPECT_NEAR(m.MaxViolation(dense->x), 0.0, 1e-6);
  }
  EXPECT_GE(solved, 20);  // the generator must produce enough solvable LPs
}

TEST(SimplexEquivalenceTest, DantzigMatchesDevexPricing) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m = RandomLp(&rng, 6, 5);
    SimplexOptions devex;
    SimplexOptions dantzig;
    dantzig.devex_pricing = false;
    auto a = SolveLp(m, devex);
    auto b = SolveLp(m, dantzig);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) EXPECT_NEAR(a->objective, b->objective, 1e-6);
  }
}

// --- Partial / candidate-list pricing ------------------------------------

TEST(SimplexPricingTest, PartialMatchesFullDevexOnRandomLps) {
  // Same optimal objective whichever pricing strategy ran: optimality is
  // only declared after a full scan in both modes.
  Rng rng(321);
  int solved = 0;
  for (int trial = 0; trial < 40; ++trial) {
    LpModel m = RandomLp(&rng, 5 + trial % 10, 3 + trial % 6);
    SimplexOptions full;
    full.pricing = PricingMode::kFullDevex;
    SimplexOptions partial;
    partial.pricing = PricingMode::kPartial;
    // A tiny list maximizes rebuild churn — the stress case.
    partial.candidate_list_size = 2;
    auto a = SolveLp(m, full);
    auto b = SolveLp(m, partial);
    ASSERT_EQ(a.ok(), b.ok()) << "trial " << trial << ": full " << a.status()
                              << " partial " << b.status();
    if (!a.ok()) continue;
    ++solved;
    EXPECT_NEAR(a->objective, b->objective, 1e-6) << "trial " << trial;
    EXPECT_NEAR(m.MaxViolation(b->x), 0.0, 1e-6);
    EXPECT_GT(b->stats.full_pricing_scans, 0);  // optimality proof ran
  }
  EXPECT_GE(solved, 15);
}

TEST(SimplexPricingTest, PartialMatchesFullDevexOnPaperExample) {
  // The paper's running example, through the real compact formulation.
  for (double lambda : {0.3, 0.5, 0.7}) {
    SvgicInstance inst = MakePaperExample(lambda);
    inst.FinalizePairs();
    CompactLpMap map;
    auto lp = BuildCompactLp(inst, &map);
    ASSERT_TRUE(lp.ok()) << lp.status();
    SimplexOptions full;
    full.pricing = PricingMode::kFullDevex;
    SimplexOptions partial;
    partial.pricing = PricingMode::kPartial;
    auto a = SolveLp(*lp, full);
    auto b = SolveLp(*lp, partial);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_NEAR(a->objective, b->objective, 1e-8) << "lambda " << lambda;
  }
}

// --- Dual simplex ---------------------------------------------------------

TEST(DualSimplexTest, BoundChangeRepairMatchesPrimalWithFewerPivots) {
  // The branch-and-bound child state: the parent-optimal basis is dual
  // feasible, one bound change makes it primal infeasible. The dual
  // repair must reach the same optimum as the composite primal phase 1,
  // in strictly fewer pivots in aggregate.
  Rng rng(555);
  int64_t dual_total = 0, primal_total = 0;
  int dual_ran = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m = RandomLp(&rng, 10, 8);
    auto parent = SolveLp(m);
    if (!parent.ok()) continue;
    // Tighten the bound of a variable sitting strictly inside its range
    // (necessarily basic), so the parent basis is primal infeasible for
    // the child and a real repair must run.
    int branch = -1;
    for (int j = 0; j < m.num_vars(); ++j) {
      if (parent->x[j] > m.lower(j) + 0.25) {
        branch = j;
        break;
      }
    }
    if (branch < 0) continue;
    m.SetBounds(branch, m.lower(branch), parent->x[branch] - 0.2);
    SimplexOptions dual_opt;
    dual_opt.warm_start_mode = WarmStartMode::kDual;
    SimplexOptions primal_opt;
    primal_opt.warm_start_mode = WarmStartMode::kPrimal;
    auto dual = SolveLp(m, dual_opt, &parent->basis);
    auto primal = SolveLp(m, primal_opt, &parent->basis);
    ASSERT_EQ(dual.ok(), primal.ok())
        << "trial " << trial << ": dual " << dual.status() << " primal "
        << primal.status();
    if (!dual.ok()) continue;
    EXPECT_TRUE(dual->warm_started);
    EXPECT_NEAR(dual->objective, primal->objective, 1e-6)
        << "trial " << trial;
    dual_total += dual->iterations;
    primal_total += primal->iterations;
    if (dual->dual_simplex_used) ++dual_ran;
  }
  EXPECT_GT(dual_ran, 5);  // the dual path must actually engage
  EXPECT_LT(dual_total, primal_total);
}

TEST(DualSimplexTest, AutoModePicksDualOnBoundChange) {
  Rng rng(2718);
  int dual_used = 0;
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m = RandomLp(&rng, 10, 8);
    auto parent = SolveLp(m);
    if (!parent.ok()) continue;
    // Tighten the bound of a basic fractional variable so the warm basis
    // is primal infeasible (nonbasic variables keep the basis feasible).
    int branch = -1;
    for (int j = 0; j < m.num_vars(); ++j) {
      const double x = parent->x[j];
      if (x > m.lower(j) + 0.25 && std::isfinite(x)) {
        branch = j;
        break;
      }
    }
    if (branch < 0) continue;
    m.SetBounds(branch, m.lower(branch),
                std::max(m.lower(branch), parent->x[branch] - 0.2));
    auto warm = SolveLp(m, {}, &parent->basis);  // default kAuto
    auto cold = SolveLp(m);
    ASSERT_EQ(warm.ok(), cold.ok());
    if (!warm.ok()) continue;
    EXPECT_NEAR(warm->objective, cold->objective, 1e-6) << "trial " << trial;
    if (warm->dual_simplex_used) ++dual_used;
  }
  EXPECT_GT(dual_used, 0);
}

TEST(DualSimplexTest, FallsBackCleanlyWhenStartBasisDualInfeasible) {
  // Flipping objective signs makes the parent basis dual infeasible;
  // kDual must detect that, skip the dual method and still land on the
  // cold optimum through the primal phases.
  Rng rng(777);
  int checked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    LpModel m = RandomLp(&rng, 8, 6);
    auto parent = SolveLp(m);
    if (!parent.ok()) continue;
    for (int j = 0; j < m.num_vars(); ++j) {
      m.SetObjectiveCoefficient(j, -m.objective(j) + 0.5);
    }
    // Also break primal feasibility so the solve cannot shortcut.
    m.SetBounds(0, m.lower(0),
                std::max(m.lower(0), std::floor(parent->x[0])));
    auto cold = SolveLp(m);
    SimplexOptions opt;
    opt.warm_start_mode = WarmStartMode::kDual;
    auto warm = SolveLp(m, opt, &parent->basis);
    ASSERT_EQ(cold.ok(), warm.ok())
        << "trial " << trial << ": cold " << cold.status() << " warm "
        << warm.status();
    if (!cold.ok()) continue;
    ++checked;
    EXPECT_NEAR(warm->objective, cold->objective, 1e-6) << "trial " << trial;
    if (!warm->dual_simplex_used) {
      EXPECT_EQ(warm->stats.dual_pivots, 0) << "trial " << trial;
    }
  }
  EXPECT_GE(checked, 5);
}

// --- Stall / Bland fallback -----------------------------------------------

TEST(SimplexStallTest, BlandFallbackStillReachesOptimumOnPlateau) {
  // Regression for the hard-coded 1e-12 stall slack: with the slack now
  // derived from `tolerance`, a zero stall threshold must trip Bland on
  // the very first degenerate pivot and still finish at the optimum.
  // Beale's cycling example: every early pivot at the origin is
  // degenerate (both <= 0 rows are tight), so the plateau is guaranteed.
  // Stated as maximization; the known optimum is x = (1/25, 0, 1, 0) with
  // value 1/20.
  LpModel m;
  int x1 = m.AddVariable(0, kLpInfinity, 0.75);
  int x2 = m.AddVariable(0, kLpInfinity, -150.0);
  int x3 = m.AddVariable(0, kLpInfinity, 0.02);
  int x4 = m.AddVariable(0, kLpInfinity, -6.0);
  m.AddRow(RowType::kLessEqual, 0,
           {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  m.AddRow(RowType::kLessEqual, 0,
           {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  m.AddRow(RowType::kLessEqual, 1, {{x3, 1.0}});
  SimplexOptions opt;
  opt.stall_threshold = 0;  // every non-improving pivot trips Bland
  auto bland = SolveLp(m, opt);
  ASSERT_TRUE(bland.ok()) << bland.status();
  EXPECT_NEAR(bland->objective, 0.05, 1e-8);
  EXPECT_GT(bland->stats.bland_pivots, 0);
  // And a loosened tolerance must not mask the plateau either.
  opt.tolerance = 1e-6;
  auto loose = SolveLp(m, opt);
  ASSERT_TRUE(loose.ok()) << loose.status();
  EXPECT_NEAR(loose->objective, 0.05, 1e-6);
  // The default threshold reaches the same optimum Devex-only.
  auto devex = SolveLp(m);
  ASSERT_TRUE(devex.ok()) << devex.status();
  EXPECT_NEAR(devex->objective, 0.05, 1e-8);
}

// --- Warm starts ----------------------------------------------------------

TEST(SimplexWarmStartTest, WarmSolveMatchesColdAfterObjectiveChange) {
  Rng rng(4321);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m = RandomLp(&rng, 8, 6);
    auto first = SolveLp(m);
    if (!first.ok()) continue;
    // Perturb the objective (the lambda-sweep pattern: same constraints).
    for (int j = 0; j < m.num_vars(); ++j) {
      m.SetObjectiveCoefficient(j, m.objective(j) * 1.3 + 0.1);
    }
    auto cold = SolveLp(m);
    auto warm = SolveLp(m, {}, &first->basis);
    ASSERT_EQ(cold.ok(), warm.ok());
    if (!cold.ok()) continue;
    EXPECT_TRUE(warm->warm_started);
    EXPECT_NEAR(warm->objective, cold->objective, 1e-6) << "trial " << trial;
    EXPECT_NEAR(m.MaxViolation(warm->x), 0.0, 1e-6);
  }
}

TEST(SimplexWarmStartTest, WarmSolveMatchesColdAfterBoundTightening) {
  // The branch-and-bound pattern: child nodes tighten one variable bound,
  // making the parent basis primal infeasible; phase 1 must repair it.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m = RandomLp(&rng, 8, 6);
    auto parent = SolveLp(m);
    if (!parent.ok()) continue;
    const int branch = trial % m.num_vars();
    const double v = parent->x[branch];
    m.SetBounds(branch, m.lower(branch),
                std::max(m.lower(branch), std::floor(v)));
    auto cold = SolveLp(m);
    auto warm = SolveLp(m, {}, &parent->basis);
    ASSERT_EQ(cold.ok(), warm.ok())
        << "trial " << trial << ": cold " << cold.status() << " warm "
        << warm.status();
    if (!cold.ok()) continue;
    EXPECT_TRUE(warm->warm_started);
    EXPECT_NEAR(warm->objective, cold->objective, 1e-6) << "trial " << trial;
  }
}

TEST(SimplexWarmStartTest, IncompatibleBasisFallsBackToCold) {
  LpModel m;
  int x = m.AddVariable(0, kLpInfinity, 3);
  int y = m.AddVariable(0, kLpInfinity, 2);
  m.AddRow(RowType::kLessEqual, 4, {{x, 1}, {y, 1}});
  LpBasis wrong_shape;
  wrong_shape.structural.assign(5, VarBasisStatus::kNonbasicLower);
  wrong_shape.logical.assign(7, VarBasisStatus::kBasic);
  auto sol = SolveLp(m, {}, &wrong_shape);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_FALSE(sol->warm_started);
  EXPECT_NEAR(sol->objective, 12.0, 1e-8);
}

TEST(SimplexWarmStartTest, OptimalBasisResolvesInFewIterations) {
  Rng rng(2024);
  LpModel m = RandomLp(&rng, 12, 8);
  auto first = SolveLp(m);
  ASSERT_TRUE(first.ok()) << first.status();
  auto again = SolveLp(m, {}, &first->basis);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->warm_started);
  // Re-solving from the optimal basis needs no phase-1 pivots and at most
  // the final optimality check in phase 2.
  EXPECT_EQ(again->phase1_iterations, 0);
  EXPECT_LE(again->iterations, 2);
  EXPECT_NEAR(again->objective, first->objective, 1e-9);
}

// --- Time limit -----------------------------------------------------------

TEST(SimplexTest, TimeLimitIsEnforcedInsidePivotLoop) {
  Rng rng(5);
  LpModel m = RandomLp(&rng, 30, 25);
  SimplexOptions opt;
  opt.time_limit_seconds = 0.0;  // expired before the first pivot
  auto sol = SolveLp(m, opt);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kResourceExhausted);
}

// --- Capped simplex -----------------------------------------------------

TEST(CappedSimplexTest, ProjectionFeasible) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(20);
    for (double& x : v) x = rng.Uniform(-2, 2);
    const double k = 1 + rng.UniformInt(int64_t{1}, int64_t{10});
    auto w = v;
    ProjectCappedSimplex(&w, k);
    double total = 0;
    for (double x : w) {
      EXPECT_GE(x, -1e-9);
      EXPECT_LE(x, 1 + 1e-9);
      total += x;
    }
    EXPECT_NEAR(total, k, 1e-6);
  }
}

TEST(CappedSimplexTest, ProjectionIsIdempotentOnFeasible) {
  std::vector<double> v = {0.5, 0.5, 1.0, 0.0};
  auto w = v;
  ProjectCappedSimplex(&w, 2.0);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(w[i], v[i], 1e-6);
}

TEST(CappedSimplexTest, ProjectionIsClosestPoint) {
  // For a 2-d case the projection onto {x0 + x1 = 1, 0<=x<=1} is computable
  // by hand: project (0.9, 0.5) -> (0.7, 0.3).
  std::vector<double> v = {0.9, 0.5};
  ProjectCappedSimplex(&v, 1.0);
  EXPECT_NEAR(v[0], 0.7, 1e-6);
  EXPECT_NEAR(v[1], 0.3, 1e-6);
}

TEST(CappedSimplexTest, LmoPicksTopK) {
  std::vector<double> g = {0.1, 0.9, 0.5, 0.7};
  auto x = CappedSimplexLmo(g, 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[3], 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
}

TEST(CappedSimplexTest, LmoFractionalK) {
  std::vector<double> g = {0.1, 0.9, 0.5};
  auto x = CappedSimplexLmo(g, 1.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 0.5);
}

// --- Subgradient solver ---------------------------------------------------

PairwiseConcaveProblem SmallConcaveProblem() {
  // 2 agents, 3 items, k=1. Linear prefs pull agents apart; pair weight on
  // item 0 pulls them together.
  PairwiseConcaveProblem p;
  p.num_agents = 2;
  p.num_items = 3;
  p.k = 1.0;
  p.linear = {0.6, 0.0, 0.3,   // agent 0
              0.0, 0.55, 0.3};  // agent 1
  ConcavePair pr;
  pr.a = 0;
  pr.b = 1;
  pr.weights = {{2, 1.0}};  // strong joint reward on item 2
  p.pairs.push_back(pr);
  return p;
}

TEST(SubgradientTest, FindsJointItemWhenSocialDominates) {
  auto p = SmallConcaveProblem();
  auto sol = MaximizePairwiseConcave(p);
  ASSERT_TRUE(sol.ok()) << sol.status();
  // Optimal: both put mass 1 on item 2: objective 0.3 + 0.3 + 1.0 = 1.6.
  EXPECT_NEAR(sol->objective, 1.6, 1e-6);
  EXPECT_NEAR(sol->x[2], 1.0, 1e-6);
  EXPECT_NEAR(sol->x[5], 1.0, 1e-6);
}

TEST(SubgradientTest, MatchesSimplexOnRandomInstances) {
  // The reduced concave objective equals the LP optimum; verify against an
  // explicit y-variable LP solved with the simplex.
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3, m = 4;
    const double k = 2.0;
    PairwiseConcaveProblem p;
    p.num_agents = n;
    p.num_items = m;
    p.k = k;
    p.linear.resize(n * m);
    for (double& v : p.linear) v = rng.Uniform(0, 1);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (!rng.Bernoulli(0.8)) continue;
        ConcavePair pr;
        pr.a = a;
        pr.b = b;
        for (int c = 0; c < m; ++c) {
          if (rng.Bernoulli(0.7)) {
            pr.weights.emplace_back(c, rng.Uniform(0, 1));
          }
        }
        if (!pr.weights.empty()) p.pairs.push_back(pr);
      }
    }
    // Explicit LP.
    LpModel lp;
    std::vector<int> xv(n * m);
    for (int a = 0; a < n; ++a)
      for (int c = 0; c < m; ++c)
        xv[a * m + c] = lp.AddVariable(0, 1, p.linear[a * m + c]);
    for (int a = 0; a < n; ++a) {
      std::vector<LpTerm> terms;
      for (int c = 0; c < m; ++c) terms.push_back({xv[a * m + c], 1});
      lp.AddRow(RowType::kEqual, k, terms);
    }
    for (const auto& pr : p.pairs) {
      for (const auto& [c, w] : pr.weights) {
        int y = lp.AddVariable(0, 1, w);
        lp.AddRow(RowType::kLessEqual, 0, {{y, 1}, {xv[pr.a * m + c], -1}});
        lp.AddRow(RowType::kLessEqual, 0, {{y, 1}, {xv[pr.b * m + c], -1}});
      }
    }
    auto exact = SolveLp(lp);
    ASSERT_TRUE(exact.ok()) << exact.status();

    SubgradientOptions opt;
    opt.max_iterations = 400;
    opt.polish_sweeps = 8;
    auto approx = MaximizePairwiseConcave(p, opt);
    ASSERT_TRUE(approx.ok()) << approx.status();
    EXPECT_LE(approx->objective, exact->objective + 1e-6);
    EXPECT_GE(approx->objective, 0.93 * exact->objective);
  }
}

TEST(SubgradientTest, ExactBlockMaximizeIsOptimalForOneAgent) {
  // Single agent, no pairs: block maximization must pick the top-k items.
  PairwiseConcaveProblem p;
  p.num_agents = 1;
  p.num_items = 5;
  p.k = 2.0;
  p.linear = {0.1, 0.9, 0.4, 0.8, 0.2};
  std::vector<double> x(5, 0.4);
  std::vector<std::vector<int>> poa(1);
  double contrib = ExactBlockMaximize(p, 0, poa, &x);
  EXPECT_NEAR(contrib, 1.7, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
  EXPECT_NEAR(x[3], 1.0, 1e-9);
}

TEST(SubgradientTest, RejectsBadInput) {
  PairwiseConcaveProblem p;
  p.num_agents = 0;
  EXPECT_FALSE(MaximizePairwiseConcave(p).ok());
  p.num_agents = 1;
  p.num_items = 2;
  p.k = 5.0;  // k > m
  p.linear = {0, 0};
  EXPECT_FALSE(MaximizePairwiseConcave(p).ok());
}

// --- Branch and bound -----------------------------------------------------

TEST(BranchAndBoundTest, SmallKnapsack) {
  // max 10a + 6b + 4c s.t. a + b + c <= 2 (binary) -> 16.
  LpModel m;
  int a = m.AddVariable(0, 1, 10);
  int b = m.AddVariable(0, 1, 6);
  int c = m.AddVariable(0, 1, 4);
  m.AddRow(RowType::kLessEqual, 2, {{a, 1}, {b, 1}, {c, 1}});
  auto sol = SolveMip(m, {a, b, c});
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(sol->proven_optimal);
  EXPECT_NEAR(sol->objective, 16.0, 1e-7);
}

TEST(BranchAndBoundTest, FractionalLpIntegerGap) {
  // max x + y s.t. 2x + 2y <= 3, binary -> LP 1.5, IP 1.
  LpModel m;
  int x = m.AddVariable(0, 1, 1);
  int y = m.AddVariable(0, 1, 1);
  m.AddRow(RowType::kLessEqual, 3, {{x, 2}, {y, 2}});
  auto sol = SolveMip(m, {x, y});
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 1.0, 1e-7);
}

TEST(BranchAndBoundTest, EqualityWithIntegers) {
  // max 5x + 4y + 3z s.t. x + y + z = 2, z binary-ish bounds.
  LpModel m;
  int x = m.AddVariable(0, 1, 5);
  int y = m.AddVariable(0, 1, 4);
  int z = m.AddVariable(0, 1, 3);
  m.AddRow(RowType::kEqual, 2, {{x, 1}, {y, 1}, {z, 1}});
  auto sol = SolveMip(m, {x, y, z});
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 9.0, 1e-7);
}

TEST(BranchAndBoundTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x integer: infeasible.
  LpModel m;
  int x = m.AddVariable(0.4, 0.6, 1);
  auto sol = SolveMip(m, {x});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(BranchAndBoundTest, AllStrategiesAgreeOnOptimum) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    LpModel m;
    const int n = 8;
    std::vector<int> vars;
    std::vector<LpTerm> row;
    for (int i = 0; i < n; ++i) {
      int v = m.AddVariable(0, 1, rng.Uniform(1, 10));
      vars.push_back(v);
      row.push_back({v, rng.Uniform(1, 5)});
    }
    m.AddRow(RowType::kLessEqual, 8, row);
    double objs[3];
    int idx = 0;
    for (auto strat : {NodeSelection::kBestBound, NodeSelection::kDepthFirst,
                       NodeSelection::kHybrid}) {
      MipOptions opt;
      opt.node_selection = strat;
      auto sol = SolveMip(m, vars, opt);
      ASSERT_TRUE(sol.ok()) << sol.status();
      EXPECT_TRUE(sol->proven_optimal);
      objs[idx++] = sol->objective;
    }
    EXPECT_NEAR(objs[0], objs[1], 1e-6);
    EXPECT_NEAR(objs[0], objs[2], 1e-6);
  }
}

TEST(BranchAndBoundTest, HeuristicSeedsIncumbent) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1);
  int y = m.AddVariable(0, 1, 1);
  m.AddRow(RowType::kLessEqual, 3, {{x, 2}, {y, 2}});
  MipOptions opt;
  bool called = false;
  opt.heuristic = [&](const std::vector<double>&)
      -> std::optional<std::vector<double>> {
    called = true;
    return std::vector<double>{1.0, 0.0};
  };
  auto sol = SolveMip(m, {x, y}, opt);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(called);
  EXPECT_NEAR(sol->objective, 1.0, 1e-7);
}

TEST(BranchAndBoundTest, WarmStartedNodesMatchColdAndPivotLess) {
  Rng rng(31);
  int64_t warm_total = 0, cold_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    LpModel m;
    const int n = 12;
    std::vector<int> vars;
    std::vector<LpTerm> row;
    for (int i = 0; i < n; ++i) {
      int v = m.AddVariable(0, 1, rng.Uniform(1, 10));
      vars.push_back(v);
      row.push_back({v, rng.Uniform(1, 5)});
    }
    m.AddRow(RowType::kLessEqual, 9, row);
    MipOptions warm_opt;
    warm_opt.warm_start_nodes = true;
    MipOptions cold_opt;
    cold_opt.warm_start_nodes = false;
    auto warm = SolveMip(m, vars, warm_opt);
    auto cold = SolveMip(m, vars, cold_opt);
    ASSERT_TRUE(warm.ok()) << warm.status();
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_TRUE(warm->proven_optimal);
    EXPECT_NEAR(warm->objective, cold->objective, 1e-7);
    warm_total += warm->simplex_iterations;
    cold_total += cold->simplex_iterations;
  }
  // Parent-basis reuse must pay for itself across the node LPs.
  EXPECT_LT(warm_total, cold_total);
}

TEST(BranchAndBoundTest, NodeLimitReturnsIncumbentUnproven) {
  // A problem with enough structure that the first dives find an incumbent
  // before the node limit bites.
  Rng rng(7);
  LpModel m;
  std::vector<int> vars;
  std::vector<LpTerm> row;
  for (int i = 0; i < 14; ++i) {
    int v = m.AddVariable(0, 1, rng.Uniform(1, 10));
    vars.push_back(v);
    row.push_back({v, rng.Uniform(1, 5)});
  }
  m.AddRow(RowType::kLessEqual, 10, row);
  MipOptions opt;
  opt.node_selection = NodeSelection::kDepthFirst;
  opt.max_nodes = 25;
  auto sol = SolveMip(m, vars, opt);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_FALSE(sol->proven_optimal);
  EXPECT_GE(sol->best_bound, sol->objective - 1e-9);
}


// --- Presolve / postsolve --------------------------------------------------

/// KKT check of LpSolution::dual_values against the model, delegated to
/// the shared audit behind the serving self-verifier (lp/kkt.h) so the
/// tests and the production checker enforce the same conditions.
void CheckDualKkt(const LpModel& m, const LpSolution& sol, double tol) {
  ASSERT_EQ(static_cast<int>(sol.dual_values.size()), m.num_rows());
  const KktReport report = CheckLpKkt(m, sol.x, sol.dual_values);
  EXPECT_LE(report.max_dual_sign_violation, tol);
  EXPECT_LE(report.max_complementary_slackness, tol);
  EXPECT_LE(report.max_reduced_cost_violation, tol);
  EXPECT_TRUE(report.Ok(std::max(tol, 1e-6)))
      << "max violation " << report.MaxViolation();
}

TEST(PresolveTest, PostsolveEquivalenceOnRandomLps) {
  // Presolve on vs off: same objective, feasible primal point, KKT-valid
  // duals, and the postsolved basis re-solves the ORIGINAL model in zero
  // pivots (the warm-start-chain invariant B&B and serving depend on).
  Rng rng(4242);
  int solved = 0, zero_pivot = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m = RandomLp(&rng, 6 + trial % 12, 4 + trial % 8);
    SimplexOptions plain;
    SimplexOptions with_pre;
    with_pre.presolve = true;
    auto a = SolveLp(m, plain);
    auto b = SolveLp(m, with_pre);
    ASSERT_EQ(a.ok(), b.ok()) << "trial " << trial << ": plain "
                              << a.status() << " presolve " << b.status();
    if (!a.ok()) continue;
    ++solved;
    const double scale = std::max(1.0, std::abs(a->objective));
    EXPECT_NEAR(a->objective, b->objective, 1e-7 * scale)
        << "trial " << trial;
    EXPECT_NEAR(m.MaxViolation(b->x), 0.0, 1e-6) << "trial " << trial;
    CheckDualKkt(m, *b, 1e-6);
    // The exact-postsolve guarantee: restored basis is optimal as-is.
    auto re = SolveLp(m, plain, &b->basis);
    ASSERT_TRUE(re.ok()) << "trial " << trial;
    EXPECT_TRUE(re->warm_started) << "trial " << trial;
    EXPECT_NEAR(re->objective, a->objective, 1e-7 * scale);
    if (re->iterations == 0) ++zero_pivot;
  }
  EXPECT_GE(solved, 15);
  // Zero pivots on the vast majority; the rest may take a couple of
  // degenerate pivots on alternate-optimum ties.
  EXPECT_GE(zero_pivot, solved * 9 / 10);
}

TEST(PresolveTest, ReducesAndPostsolvesPaperExampleCompactLp) {
  for (double lambda : {0.3, 0.5, 0.7}) {
    SvgicInstance inst = MakePaperExample(lambda);
    inst.FinalizePairs();
    CompactLpMap map;
    auto lp = BuildCompactLp(inst, &map);
    ASSERT_TRUE(lp.ok()) << lp.status();
    SimplexOptions plain;
    SimplexOptions with_pre;
    with_pre.presolve = true;
    auto a = SolveLp(*lp, plain);
    auto b = SolveLp(*lp, with_pre);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_NEAR(a->objective, b->objective, 1e-8) << "lambda " << lambda;
    EXPECT_NEAR(lp->MaxViolation(b->x), 0.0, 1e-7);
    CheckDualKkt(*lp, *b, 1e-6);
    // The paper example is tiny and socially dense - every column sits in
    // some interest pair - so nothing is removable and presolve must be an
    // exact no-op (the generated-dataset test below covers real shrink).
    auto re = SolveLp(*lp, plain, &b->basis);
    ASSERT_TRUE(re.ok());
    EXPECT_EQ(re->iterations, 0) << "lambda " << lambda;
    EXPECT_NEAR(re->objective, a->objective, 1e-8);
  }
}

TEST(PresolveTest, ShrinksGeneratedCompactLpExactly) {
  // A generated Yelp-style instance: most items are social-free, so each
  // user's x_u^c block is a big parallel-column group and presolve keeps
  // only the columns that can appear in some optimum. Objective, duals
  // and the 0-pivot re-solve must survive the reduction exactly.
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 10;
  params.num_items = 500;
  params.num_slots = 5;
  params.seed = 8;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok()) << inst.status();
  CompactLpMap map;
  auto lp = BuildCompactLp(*inst, &map);
  ASSERT_TRUE(lp.ok()) << lp.status();

  auto pre = PresolveLp(*lp);
  ASSERT_TRUE(pre.ok()) << pre.status();
  EXPECT_GT(pre->stats().parallel_cols, 0);
  EXPECT_LT(pre->reduced().num_vars(), lp->num_vars());

  SimplexOptions plain;
  SimplexOptions with_pre;
  with_pre.presolve = true;
  auto a = SolveLp(*lp, plain);
  auto b = SolveLp(*lp, with_pre);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  const double scale = std::max(1.0, std::abs(a->objective));
  EXPECT_NEAR(a->objective, b->objective, 1e-9 * scale);
  EXPECT_GT(b->stats.presolve_cols_removed, 0);
  EXPECT_NEAR(lp->MaxViolation(b->x), 0.0, 1e-7);
  CheckDualKkt(*lp, *b, 1e-6);
  auto re = SolveLp(*lp, plain, &b->basis);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re->iterations, 0);
  EXPECT_NEAR(re->objective, a->objective, 1e-9 * scale);
}

TEST(PresolveTest, SingletonRowBecomesBoundWithExactDual) {
  // max 3x + 2y  s.t.  x <= 2 (singleton), x + y <= 5, x,y in [0, 10].
  // Presolve folds the singleton row into x's bound; postsolve must
  // restore its dual (3 - y_row2 = 3 - 2 = 1) and a basis that
  // re-solves in zero pivots.
  LpModel m;
  int x = m.AddVariable(0, 10, 3);
  int y = m.AddVariable(0, 10, 2);
  int r_single = m.AddRow(RowType::kLessEqual, 2, {{x, 1.0}});
  m.AddRow(RowType::kLessEqual, 5, {{x, 1.0}, {y, 1.0}});

  auto pre = PresolveLp(m);
  ASSERT_TRUE(pre.ok()) << pre.status();
  EXPECT_EQ(pre->stats().singleton_rows, 1);
  EXPECT_EQ(pre->reduced().num_rows(), m.num_rows() - 1);

  SimplexOptions with_pre;
  with_pre.presolve = true;
  auto sol = SolveLp(m, with_pre);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 12.0, 1e-9);  // x=2, y=3
  EXPECT_NEAR(sol->x[x], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[y], 3.0, 1e-9);
  ASSERT_EQ(static_cast<int>(sol->dual_values.size()), 2);
  EXPECT_NEAR(sol->dual_values[r_single], 1.0, 1e-9);
  EXPECT_NEAR(sol->dual_values[1], 2.0, 1e-9);
  auto re = SolveLp(m, {}, &sol->basis);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re->iterations, 0);
}

TEST(PresolveTest, ProvesInfeasibilityFromFixedColumns) {
  // x fixed at 2 makes the row 2 <= 1 empty and impossible.
  LpModel m;
  int x = m.AddVariable(2, 2, 1);
  m.AddRow(RowType::kLessEqual, 1, {{x, 1.0}});
  auto pre = PresolveLp(m);
  EXPECT_FALSE(pre.ok());
  EXPECT_EQ(pre.status().code(), StatusCode::kInfeasible);
  SimplexOptions with_pre;
  with_pre.presolve = true;
  auto sol = SolveLp(m, with_pre);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(PresolveTest, MapBasisRoundTripsThroughWarmStart) {
  // A parent solve's basis, mapped through presolve, must still warm
  // start the reduced model (shape compatibility).
  Rng rng(1717);
  LpModel m = RandomLp(&rng, 12, 8);
  auto parent = SolveLp(m);
  if (!parent.ok()) GTEST_SKIP() << "random instance unsolvable";
  auto pre = PresolveLp(m);
  ASSERT_TRUE(pre.ok()) << pre.status();
  LpBasis mapped = pre->MapBasis(parent->basis);
  EXPECT_TRUE(
      mapped.Compatible(pre->reduced().num_vars(), pre->reduced().num_rows()));
  SimplexOptions with_pre;
  with_pre.presolve = true;
  auto warm = SolveLp(m, with_pre, &parent->basis);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_NEAR(warm->objective, parent->objective, 1e-7);
}

// --- Dual Devex row pricing ------------------------------------------------

TEST(DualDevexTest, MatchesMaxViolationObjectiveWithFewerPivots) {
  // Heavier B&B-child-style repairs (several tightened bounds at once) on
  // always-feasible packing LPs: both leaving-row rules must land on the
  // same objective, and dual Devex must not pivot more in aggregate (the
  // bench workload's CI gate holds the ratio at <= 0.85).
  Rng rng(555);
  int64_t devex_total = 0, maxviol_total = 0;
  int repaired = 0;
  for (int trial = 0; trial < 30; ++trial) {
    LpModel m;
    const int num_vars = 60, num_rows = 30;
    for (int j = 0; j < num_vars; ++j) {
      m.AddVariable(0.0, 1.0 + rng.Uniform(0, 2), rng.Uniform(0.1, 3.0));
    }
    for (int i = 0; i < num_rows; ++i) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < num_vars; ++j) {
        if (rng.Bernoulli(0.4)) terms.push_back({j, rng.Uniform(0.1, 2.0)});
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      m.AddRow(RowType::kLessEqual, rng.Uniform(1.0, 0.3 * num_vars),
               std::move(terms));
    }
    auto parent = SolveLp(m);
    ASSERT_TRUE(parent.ok()) << parent.status();
    int changed = 0;
    for (int j = 0; j < m.num_vars() && changed < 6; ++j) {
      if (parent->x[j] > m.lower(j) + 0.25) {
        m.SetBounds(j, m.lower(j), parent->x[j] - 0.2);
        ++changed;
      }
    }
    if (changed == 0) continue;
    SimplexOptions devex_opt;
    devex_opt.warm_start_mode = WarmStartMode::kDual;
    devex_opt.dual_row_pricing = DualRowPricing::kDevex;
    SimplexOptions maxviol_opt;
    maxviol_opt.warm_start_mode = WarmStartMode::kDual;
    maxviol_opt.dual_row_pricing = DualRowPricing::kMaxViolation;
    auto a = SolveLp(m, devex_opt, &parent->basis);
    auto b = SolveLp(m, maxviol_opt, &parent->basis);
    ASSERT_EQ(a.ok(), b.ok()) << "trial " << trial << ": devex "
                              << a.status() << " maxviol " << b.status();
    if (!a.ok()) continue;
    EXPECT_NEAR(a->objective, b->objective, 1e-6) << "trial " << trial;
    if (a->dual_simplex_used && b->dual_simplex_used) {
      ++repaired;
      devex_total += a->stats.dual_pivots;
      maxviol_total += b->stats.dual_pivots;
    }
  }
  EXPECT_GT(repaired, 20);
  EXPECT_LE(devex_total, maxviol_total);
}

// --- Eta kernels and adaptive refactorization ------------------------------

TEST(EtaKernelTest, DenseAndSparseFlavorsAgreeBitwiseOverLongStream) {
  // The dense-scatter and zero-skipping kernel flavors perform the same
  // arithmetic on every nonzero, so over a long factorize/ftran/btran/
  // update stream every component must compare equal with == (signed
  // zeros may differ in representation; == treats them as equal, which is
  // exactly the guarantee callers rely on).
  Rng rng(9090);
  const int n = 24;
  const int pool = 3 * n;
  std::vector<SparseColumn> cols(pool);
  for (int c = 0; c < pool; ++c) {
    const int diag = c % n;
    cols[c].emplace_back(diag, 3.0 + rng.Uniform(0, 1));
    for (int r = 0; r < n; ++r) {
      if (r != diag && rng.Bernoulli(0.2)) {
        cols[c].emplace_back(r, rng.Uniform(-1, 1));
      }
    }
  }
  LuKernelOptions always_dense;
  always_dense.dense_switch_density = 0.0;
  LuKernelOptions always_sparse;
  always_sparse.dense_switch_density = 2.0;
  auto fd = MakeLuFactorization(always_dense);
  auto fs = MakeLuFactorization(always_sparse);
  std::vector<int> basis(n);
  std::vector<char> in_basis(pool, 0);
  for (int i = 0; i < n; ++i) {
    basis[i] = i;
    in_basis[i] = 1;
  }
  ASSERT_TRUE(fd->Factorize(cols, basis).ok());
  ASSERT_TRUE(fs->Factorize(cols, basis).ok());
  int updates = 0;
  int64_t mismatches = 0;
  for (int step = 0; step < 2500; ++step) {
    const int enter = static_cast<int>(rng.UniformInt(pool));
    std::vector<double> wd(n, 0.0), ws(n, 0.0);
    for (const auto& [r, a] : cols[enter]) wd[r] = ws[r] = a;
    fd->Ftran(&wd);
    fs->Ftran(&ws);
    for (int i = 0; i < n; ++i) mismatches += wd[i] == ws[i] ? 0 : 1;
    std::vector<double> yd(n, 0.0), ys(n, 0.0);
    yd[step % n] = ys[step % n] = 1.0;
    fd->Btran(&yd);
    fs->Btran(&ys);
    for (int i = 0; i < n; ++i) mismatches += yd[i] == ys[i] ? 0 : 1;
    if (in_basis[enter]) continue;
    int piv = 0;
    for (int i = 1; i < n; ++i) {
      if (std::abs(wd[i]) > std::abs(wd[piv])) piv = i;
    }
    if (std::abs(wd[piv]) < 1e-6) continue;
    const Status ud = fd->Update(wd, piv);
    const Status us = fs->Update(ws, piv);
    ASSERT_EQ(ud.ok(), us.ok()) << "step " << step;
    if (!ud.ok() || fd->eta_count() >= 64) {
      ASSERT_TRUE(fd->Factorize(cols, basis).ok());
      ASSERT_TRUE(fs->Factorize(cols, basis).ok());
      if (!ud.ok()) continue;
    }
    if (ud.ok()) {
      in_basis[basis[piv]] = 0;
      in_basis[enter] = 1;
      basis[piv] = enter;
      ++updates;
    }
  }
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(updates, 400);
}

TEST(AdaptiveRefactorTest, BoundsEtaGrowthVersusFixedInterval) {
  // With the hard cap effectively disabled, the fixed-interval policy
  // lets the eta file grow with the pivot count while the adaptive
  // density/rent-or-buy triggers keep folding it back into the LU.
  Rng rng(31337);
  LpModel m;
  const int num_vars = 120, num_rows = 60;
  for (int j = 0; j < num_vars; ++j) {
    m.AddVariable(0.0, 1.0 + rng.Uniform(0, 2), rng.Uniform(0.1, 3.0));
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.Bernoulli(0.3)) terms.push_back({j, rng.Uniform(0.1, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    m.AddRow(RowType::kLessEqual, rng.Uniform(2.0, 0.3 * num_vars),
             std::move(terms));
  }
  SimplexOptions fixed;
  fixed.refactor_policy = RefactorPolicy::kFixedInterval;
  fixed.refactor_interval = 1 << 30;
  SimplexOptions adaptive;
  adaptive.refactor_policy = RefactorPolicy::kAdaptive;
  adaptive.refactor_interval = 1 << 30;
  auto a = SolveLp(m, fixed);
  auto b = SolveLp(m, adaptive);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_NEAR(a->objective, b->objective, 1e-6);
  ASSERT_GT(b->iterations, 20);  // enough pivots for the policy to matter
  EXPECT_GT(b->stats.refactorizations, a->stats.refactorizations);
  // LpStats must surface the eta-file state (the small-fix satellite):
  // the unmanaged chain keeps every pivot's eta, the adaptive one stays
  // below the density bound.
  EXPECT_GT(a->stats.eta_count, 0);
  EXPECT_LT(b->stats.eta_count, a->stats.eta_count);
}

}  // namespace
}  // namespace savg
