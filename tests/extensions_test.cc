#include <gtest/gtest.h>

#include "core/avg_d.h"
#include "core/extensions.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "metrics/metrics.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(ExtensionsTest, FoldCommodityValuesIsExactTransform) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_commodity_values({2.0, 0.5, 1.0, 1.5, 1.0});
  auto folded = FoldCommodityValues(inst);
  ASSERT_TRUE(folded.ok()) << folded.status();
  // Plain evaluation on the folded instance == weighted evaluation on the
  // original, for any configuration.
  for (const Configuration& config :
       {MakeSavgOptimalConfig(), MakePersonalizedConfig()}) {
    EvaluateOptions weighted;
    weighted.use_extension_weights = true;
    EXPECT_NEAR(Evaluate(*folded, config).Total(),
                Evaluate(inst, config, weighted).Total(), 1e-5);
  }
}

TEST(ExtensionsTest, FoldRequiresCommodityValues) {
  SvgicInstance inst = MakePaperExample(0.5);
  EXPECT_FALSE(FoldCommodityValues(inst).ok());
}

TEST(ExtensionsTest, AvgDOnFoldedInstanceLiftsProfit) {
  // Optimizing the folded instance must beat optimizing the plain one when
  // measured by the commodity-weighted objective.
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_commodity_values({5.0, 0.2, 0.2, 0.2, 0.2});  // tripod is gold
  auto folded = FoldCommodityValues(inst);
  ASSERT_TRUE(folded.ok());
  auto frac_plain = SolveRelaxation(inst);
  auto frac_folded = SolveRelaxation(*folded);
  ASSERT_TRUE(frac_plain.ok() && frac_folded.ok());
  auto plain = RunAvgD(inst, *frac_plain);
  auto aware = RunAvgD(*folded, *frac_folded);
  ASSERT_TRUE(plain.ok() && aware.ok());
  EvaluateOptions weighted;
  weighted.use_extension_weights = true;
  EXPECT_GE(Evaluate(inst, aware->config, weighted).Total(),
            Evaluate(inst, plain->config, weighted).Total() - 1e-9);
}

TEST(ExtensionsTest, SlotOrderOptimizationImprovesWeightedObjective) {
  SvgicInstance inst = MakePaperExample(0.5);
  inst.set_slot_weights({9.0, 3.0, 1.0});  // center-of-aisle effect [74]
  const Configuration config = MakeAvgTable7Config();
  const Configuration reordered = OptimizeSlotOrder(inst, config);
  EvaluateOptions weighted;
  weighted.use_extension_weights = true;
  EXPECT_GE(Evaluate(inst, reordered, weighted).Total(),
            Evaluate(inst, config, weighted).Total() - 1e-9);
  // Plain objective is invariant under global slot permutations.
  EXPECT_NEAR(Evaluate(inst, reordered).Total(),
              Evaluate(inst, config).Total(), 1e-9);
  EXPECT_TRUE(reordered.CheckValid().ok());
}

TEST(ExtensionsTest, MultiViewExtendsWithoutDuplicates) {
  SvgicInstance inst = MakePaperExample(0.5);
  const Configuration base = MakePersonalizedConfig();
  const MultiViewConfig mv = ExtendToMultiView(inst, base, /*beta=*/2);
  for (UserId u = 0; u < 4; ++u) {
    std::set<ItemId> seen;
    for (SlotId s = 0; s < 3; ++s) {
      ASSERT_GE(mv.views[u][s].size(), 1u);
      ASSERT_LE(mv.views[u][s].size(), 2u);
      EXPECT_EQ(mv.views[u][s][0], base.At(u, s));  // primary preserved
      for (ItemId c : mv.views[u][s]) {
        EXPECT_TRUE(seen.insert(c).second) << "duplicate view item";
      }
    }
  }
  // Extra views can only add utility.
  EXPECT_GE(EvaluateMultiView(inst, mv),
            Evaluate(inst, base).ScaledTotal() - 1e-9);
}

TEST(ExtensionsTest, MultiViewBeta1IsBaseline) {
  SvgicInstance inst = MakePaperExample(0.5);
  const Configuration base = MakeSavgOptimalConfig();
  const MultiViewConfig mv = ExtendToMultiView(inst, base, 1);
  EXPECT_NEAR(EvaluateMultiView(inst, mv),
              Evaluate(inst, base).ScaledTotal(), 1e-5);
}

TEST(ExtensionsTest, MvdLpBoundsGreedyExtension) {
  // The Section 5 MVD LP upper-bounds any beta-view configuration; the
  // greedy extension must sit between the single-view value and the bound.
  SvgicInstance inst = MakePaperExample(0.5);
  for (int beta : {1, 2, 3}) {
    auto bound = SolveMvdLpBound(inst, beta);
    ASSERT_TRUE(bound.ok()) << bound.status();
    const Configuration base = MakeSavgOptimalConfig();
    const MultiViewConfig mv = ExtendToMultiView(inst, base, beta);
    const double value = EvaluateMultiView(inst, mv);
    EXPECT_LE(value, *bound + 1e-5) << "beta " << beta;
    EXPECT_GE(*bound, 10.35 - 1e-6);  // at least the single-view optimum
  }
  // More views can only raise the bound.
  auto b1 = SolveMvdLpBound(inst, 1);
  auto b3 = SolveMvdLpBound(inst, 3);
  ASSERT_TRUE(b1.ok() && b3.ok());
  EXPECT_GE(*b3, *b1 - 1e-9);
}

TEST(ExtensionsTest, MvdLpRejectsBadBeta) {
  SvgicInstance inst = MakePaperExample(0.5);
  EXPECT_FALSE(SolveMvdLpBound(inst, 0).ok());
}

TEST(ExtensionsTest, GroupwiseSaturationBounded) {
  SvgicInstance inst = MakePaperExample(0.5);
  const Configuration config = MakeGroupConfig();
  const double pairwise = Evaluate(inst, config).ScaledTotal();
  // Saturation -> infinity approaches the pairwise objective; small
  // saturation discounts large groups.
  const double nearly_pairwise = EvaluateGroupwise(inst, config, 1e6);
  const double saturated = EvaluateGroupwise(inst, config, 0.5);
  EXPECT_NEAR(nearly_pairwise, pairwise, 0.05);
  EXPECT_LT(saturated, pairwise);
  EXPECT_GT(saturated, 0.0);
}

TEST(ExtensionsTest, MinimizeSubgroupChangePreservesObjective) {
  SvgicInstance inst = MakePaperExample(0.5);
  const Configuration config = MakeSavgOptimalConfig();
  const Configuration reordered = MinimizeSubgroupChange(inst, config);
  EXPECT_TRUE(reordered.CheckValid().ok());
  EXPECT_NEAR(Evaluate(inst, reordered).Total(),
              Evaluate(inst, config).Total(), 1e-9);
  EXPECT_LE(SubgroupChangeEditDistance(inst, reordered),
            SubgroupChangeEditDistance(inst, config));
}

TEST(ExtensionsTest, DynamicJoinAndLeave) {
  SvgicInstance inst = MakePaperExample(0.5);
  DynamicSession session(inst, MakeSavgOptimalConfig());
  const double before = session.CurrentScaledTotal();
  EXPECT_NEAR(before, 10.35, 1e-5);

  // Eve joins: loves the SP camera (c5), friends with Alice.
  DynamicSession::NewUserTie tie;
  tie.other = kAlice;
  tie.tau_out = {{4, 0.3f}};
  tie.tau_in = {{4, 0.2f}};
  std::vector<float> pref = {0.1f, 0.1f, 0.2f, 0.3f, 0.9f};
  auto eve = session.UserJoin(pref, {tie});
  ASSERT_TRUE(eve.ok()) << eve.status();
  EXPECT_EQ(*eve, 4);
  EXPECT_TRUE(session.IsActive(*eve));
  // Eve should co-display c5 with Alice at slot 0 (greedy joins the group).
  EXPECT_EQ(session.config().At(*eve, 0), 4);
  const double after_join = session.CurrentScaledTotal();
  EXPECT_GT(after_join, before);

  // Eve leaves again: total returns to the original value.
  ASSERT_TRUE(session.UserLeave(*eve).ok());
  EXPECT_FALSE(session.IsActive(*eve));
  EXPECT_NEAR(session.CurrentScaledTotal(), before, 1e-5);
  // Leaving twice is an error.
  EXPECT_FALSE(session.UserLeave(*eve).ok());
}

TEST(ExtensionsTest, DynamicJoinRejectsBadTies) {
  SvgicInstance inst = MakePaperExample(0.5);
  DynamicSession session(inst, MakeSavgOptimalConfig());
  DynamicSession::NewUserTie tie;
  tie.other = 99;
  std::vector<float> pref(5, 0.1f);
  EXPECT_FALSE(session.UserJoin(pref, {tie}).ok());
  EXPECT_FALSE(session.UserJoin({0.1f, 0.2f}, {}).ok());  // wrong size
}

}  // namespace
}  // namespace savg
