#include <gtest/gtest.h>

#include "baselines/fmg.h"
#include "baselines/per.h"
#include "metrics/metrics.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(MetricsTest, GroupConfigIsAllIntra) {
  SvgicInstance inst = MakePaperExample(0.5);
  const SubgroupMetrics m =
      ComputeSubgroupMetrics(inst, MakeGroupConfig());
  EXPECT_NEAR(m.intra_fraction, 1.0, 1e-9);
  EXPECT_NEAR(m.inter_fraction, 0.0, 1e-9);
  EXPECT_NEAR(m.co_display_rate, 1.0, 1e-9);
  EXPECT_NEAR(m.alone_rate, 0.0, 1e-9);
  // Whole group = whole graph: normalized density is exactly 1.
  EXPECT_NEAR(m.normalized_density, 1.0, 1e-9);
}

TEST(MetricsTest, PersonalizedConfigIsAllInterHere) {
  SvgicInstance inst = MakePaperExample(0.5);
  const SubgroupMetrics m =
      ComputeSubgroupMetrics(inst, MakePersonalizedConfig());
  // In the running example the personalized columns share no (item, slot).
  EXPECT_NEAR(m.intra_fraction, 0.0, 1e-9);
  EXPECT_NEAR(m.inter_fraction, 1.0, 1e-9);
  EXPECT_NEAR(m.co_display_rate, 0.0, 1e-9);
  EXPECT_NEAR(m.alone_rate, 1.0, 1e-9);
  EXPECT_NEAR(m.normalized_density, 0.0, 1e-9);
}

TEST(MetricsTest, SavgConfigMixesIntraAndInter) {
  SvgicInstance inst = MakePaperExample(0.5);
  const SubgroupMetrics m =
      ComputeSubgroupMetrics(inst, MakeSavgOptimalConfig());
  EXPECT_GT(m.intra_fraction, 0.3);
  EXPECT_GT(m.inter_fraction, 0.0);
  EXPECT_NEAR(m.intra_fraction + m.inter_fraction, 1.0, 1e-9);
  EXPECT_NEAR(m.co_display_rate, 1.0, 1e-9);  // every pair shares something
  EXPECT_NEAR(m.alone_rate, 0.0, 1e-9);
}

TEST(MetricsTest, UpperBoundDominatesAchievedUtility) {
  SvgicInstance inst = MakePaperExample(0.5);
  for (const Configuration& config :
       {MakeSavgOptimalConfig(), MakePersonalizedConfig(),
        MakeGroupConfig()}) {
    const auto per_user = EvaluatePerUser(inst, config);
    for (UserId u = 0; u < 4; ++u) {
      EXPECT_LE(per_user[u], UpperBoundUtility(inst, u) + 1e-9);
    }
  }
}

TEST(MetricsTest, RegretInUnitIntervalAndOrdersMethods) {
  SvgicInstance inst = MakePaperExample(0.5);
  const auto reg_opt = RegretRatios(inst, MakeSavgOptimalConfig());
  const auto reg_per = RegretRatios(inst, MakePersonalizedConfig());
  double mean_opt = 0.0, mean_per = 0.0;
  for (UserId u = 0; u < 4; ++u) {
    EXPECT_GE(reg_opt[u], 0.0);
    EXPECT_LE(reg_opt[u], 1.0);
    mean_opt += reg_opt[u];
    mean_per += reg_per[u];
  }
  // The SAVG optimum leaves less regret than pure personalization (which
  // foregoes all social utility).
  EXPECT_LT(mean_opt, mean_per);
}

TEST(MetricsTest, SubgroupChangeEditDistance) {
  SvgicInstance inst = MakePaperExample(0.5);
  // Group config: all pairs together at every slot -> zero change.
  EXPECT_EQ(SubgroupChangeEditDistance(inst, MakeGroupConfig()), 0);
  // Personalized: never together -> zero change as well.
  EXPECT_EQ(SubgroupChangeEditDistance(inst, MakePersonalizedConfig()), 0);
  // The SAVG optimum regroups across slots -> positive change.
  EXPECT_GT(SubgroupChangeEditDistance(inst, MakeSavgOptimalConfig()), 0);
}

TEST(MetricsTest, PartialConfigurationsAreHandled) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config(4, 3, 5);
  ASSERT_TRUE(config.Set(kAlice, 0, 4).ok());
  const SubgroupMetrics m = ComputeSubgroupMetrics(inst, config);
  EXPECT_EQ(m.intra_fraction, 0.0);
  EXPECT_EQ(m.co_display_rate, 0.0);
  EXPECT_EQ(m.alone_rate, 1.0);
}

}  // namespace
}  // namespace savg
