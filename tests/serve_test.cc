// Tests of the serving front-end (src/serve/): frame codec + fuzzed
// decoding, admission-control shedding, resolve coalescing equivalence,
// SessionManager introspection, and an end-to-end socket round trip
// against an in-process ServeServer (binary protocol and HTTP fallback).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "online/session.h"
#include "online/session_manager.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, double lambda,
                             uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.lambda = lambda;
  params.seed = seed;
  params.universe_users = 4 * n + 20;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

// --- Frame codec -----------------------------------------------------------

TEST(WireTest, FrameRoundTripByteAtATime) {
  std::string stream;
  std::string payload;
  EncodeCommand(MakePref(3, 5, 0.25), &payload);
  AppendFrame(FrameKind::kApply, 42, 7, payload, &stream);
  AppendFrame(FrameKind::kPing, 43, 0, "", &stream);
  AppendFrame(FrameKind::kStatus, 44, 0, "", &stream);

  FrameReader reader;
  std::vector<FrameHeader> headers;
  std::vector<std::string> payloads;
  for (char byte : stream) {
    reader.Feed(&byte, 1);
    for (;;) {
      FrameHeader header;
      std::string body;
      auto next = reader.Next(&header, &body);
      ASSERT_TRUE(next.ok()) << next.status();
      if (!*next) break;
      headers.push_back(header);
      payloads.push_back(body);
    }
  }
  ASSERT_EQ(headers.size(), 3u);
  EXPECT_EQ(headers[0].kind, FrameKind::kApply);
  EXPECT_EQ(headers[0].request_id, 42u);
  EXPECT_EQ(headers[0].session_id, 7u);
  EXPECT_EQ(payloads[0], payload);
  EXPECT_EQ(headers[1].kind, FrameKind::kPing);
  EXPECT_EQ(headers[2].request_id, 44u);
  EXPECT_EQ(reader.buffered_bytes(), 0u);

  size_t consumed = 0;
  auto decoded = DecodeCommand(payloads[0].data(), payloads[0].size(),
                               &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, MakePref(3, 5, 0.25));
}

TEST(WireTest, HeaderRejectsMalformedFields) {
  std::string frame;
  AppendFrame(FrameKind::kPing, 1, 0, "", &frame);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);

  {  // Bad magic.
    std::string bad = frame;
    bad[0] = 'X';
    EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size()).ok());
  }
  {  // Unknown version.
    std::string bad = frame;
    bad[4] = 9;
    EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size()).ok());
  }
  {  // Unknown kind.
    std::string bad = frame;
    bad[5] = 77;
    EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size()).ok());
  }
  {  // Byte 6 is the flags byte now: the known flags parse...
    std::string flagged = frame;
    flagged[6] = static_cast<char>(kFrameFlagTrace | kFrameFlagVerify);
    auto header = ParseFrameHeader(flagged.data(), flagged.size());
    ASSERT_TRUE(header.ok()) << header.status();
    EXPECT_EQ(header->flags, kFrameFlagTrace | kFrameFlagVerify);
  }
  {  // ...but unknown flag bits are still rejected (forward compat).
    std::string bad = frame;
    bad[6] = 0x04;
    EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size()).ok());
  }
  {  // Nonzero reserved byte.
    std::string bad = frame;
    bad[7] = 1;
    EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size()).ok());
  }
  {  // Oversized payload length (4 GB).
    std::string bad = frame;
    bad[20] = bad[21] = bad[22] = bad[23] = static_cast<char>(0xFF);
    EXPECT_FALSE(ParseFrameHeader(bad.data(), bad.size()).ok());
  }
  // Too short to be a header at all.
  EXPECT_FALSE(ParseFrameHeader(frame.data(), 10).ok());
}

TEST(WireTest, FuzzedStreamsNeverCrashTheReader) {
  // Random corruption, truncation and garbage injection over valid frame
  // streams: the reader must always either produce frames, ask for more
  // bytes, or fail with a Status — never crash or read out of bounds
  // (the ASan CI job enforces the latter).
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int trial = 0; trial < 300; ++trial) {
    std::string stream;
    const int frames = 1 + trial % 4;
    for (int i = 0; i < frames; ++i) {
      std::string payload;
      if (i % 2 == 0) EncodeCommand(MakePref(1, 2, 0.5), &payload);
      AppendFrame(i % 2 == 0 ? FrameKind::kApply : FrameKind::kPing,
                  trial, i, payload, &stream);
    }
    // Corrupt ~3 random bytes, sometimes truncate, sometimes inject.
    for (int i = 0; i < 3; ++i) {
      if (coin(rng) < 0.7 && !stream.empty()) {
        stream[rng() % stream.size()] = static_cast<char>(byte(rng));
      }
    }
    if (coin(rng) < 0.3) stream.resize(rng() % (stream.size() + 1));
    if (coin(rng) < 0.3) {
      stream.insert(rng() % (stream.size() + 1), 1,
                    static_cast<char>(byte(rng)));
    }

    FrameReader reader;
    size_t offset = 0;
    bool dead = false;
    int extracted = 0;
    while (offset < stream.size() && !dead && extracted < 100) {
      const size_t chunk =
          std::min<size_t>(1 + rng() % 7, stream.size() - offset);
      reader.Feed(stream.data() + offset, chunk);
      offset += chunk;
      for (;;) {
        FrameHeader header;
        std::string body;
        auto next = reader.Next(&header, &body);
        if (!next.ok()) {
          dead = true;  // drop the connection — corrupt framing
          break;
        }
        if (!*next) break;
        ++extracted;
        EXPECT_LE(body.size(), kMaxPayloadBytes);
      }
    }
  }
}

TEST(WireTest, ApplyResultRoundTrip) {
  ApplyResult result;
  result.code = StatusCode::kResourceExhausted;
  result.message = "queue full";
  result.assigned_id = 12;
  result.resolved = true;
  result.coalesced = 3;
  result.lp_objective = 41.5;
  result.scaled_total = 39.25;
  result.resolve_seconds = 0.0125;
  result.pivots = 77;
  std::string bytes;
  EncodeApplyResult(result, &bytes);
  auto decoded = DecodeApplyResult(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->code, result.code);
  EXPECT_EQ(decoded->message, result.message);
  EXPECT_EQ(decoded->assigned_id, result.assigned_id);
  EXPECT_EQ(decoded->resolved, result.resolved);
  EXPECT_EQ(decoded->coalesced, result.coalesced);
  EXPECT_EQ(decoded->lp_objective, result.lp_objective);
  EXPECT_EQ(decoded->scaled_total, result.scaled_total);
  EXPECT_EQ(decoded->resolve_seconds, result.resolve_seconds);
  EXPECT_EQ(decoded->pivots, result.pivots);
  // Truncations fail cleanly.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeApplyResult(bytes.data(), len).ok()) << len;
  }
}

// --- SessionManager introspection ------------------------------------------

TEST(SessionManagerTest, ListSessionsAndGetStats) {
  SessionManager manager(1);
  const int a = manager.CreateSession(RandomInstance(8, 12, 2, 0.5, 3));
  const int b = manager.CreateSession(RandomInstance(10, 14, 2, 0.5, 4));
  EXPECT_EQ(manager.ListSessions(), (std::vector<int>{a, b}));

  ASSERT_TRUE(manager.Submit(b, MakePref(0, 1, 0.7)).ok());
  ASSERT_TRUE(manager.Submit(b, MakeJoin()).ok());
  ASSERT_TRUE(manager.Submit(b, MakeResolve()).ok());
  manager.Drain();

  auto stats_a = manager.GetStats(a);
  ASSERT_TRUE(stats_a.ok());
  EXPECT_EQ(stats_a->session_id, a);
  EXPECT_EQ(stats_a->num_users, 8);
  EXPECT_EQ(stats_a->commands_applied, 0);

  auto stats_b = manager.GetStats(b);
  ASSERT_TRUE(stats_b.ok());
  EXPECT_EQ(stats_b->num_users, 11);  // 10 + join
  EXPECT_EQ(stats_b->commands_applied, 3);
  EXPECT_EQ(stats_b->resolves, 1);
  EXPECT_GT(stats_b->last_scaled_total, 0.0);
  EXPECT_TRUE(stats_b->first_error.ok());
  EXPECT_EQ(stats_b->queue_depth, 0u);

  EXPECT_FALSE(manager.GetStats(99).ok());
  EXPECT_FALSE(manager.GetStats(-1).ok());
}

// --- Admission control -----------------------------------------------------

TEST(AdmissionTest, ShedsWhenQueueIsFull) {
  // One worker pinned inside a completion callback makes the depth
  // deterministic: nothing completes until we release, so the Nth submit
  // past the bound must shed.
  SessionManagerOptions options;
  options.num_workers = 1;
  SessionManager manager(options);
  const int session = manager.CreateSession(RandomInstance(8, 12, 2, 0.5, 5));
  MetricsRegistry metrics;
  AdmissionOptions admission_options;
  admission_options.max_queue_depth = 3;
  AdmissionQueue admission(&manager, &metrics, admission_options);

  std::promise<void> entered, release;
  auto entered_future = entered.get_future();
  std::shared_future<void> release_future(release.get_future());
  Status first = admission.Submit(
      session, MakePref(0, 0, 0.5),
      [&entered, release_future](const Status&, const CommandOutcome&) {
        entered.set_value();
        release_future.wait();
      });
  ASSERT_TRUE(first.ok());
  entered_future.wait();  // the only worker is now pinned; depth stays 1

  EXPECT_TRUE(admission.Submit(session, MakePref(1, 1, 0.5)).ok());
  EXPECT_TRUE(admission.Submit(session, MakePref(2, 2, 0.5)).ok());
  Status shed = admission.Submit(session, MakePref(3, 3, 0.5));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.shed_count(), 1);
  EXPECT_EQ(admission.admitted_count(), 3);
  EXPECT_EQ(admission.depth(), 3);

  release.set_value();
  manager.Drain();
  EXPECT_EQ(admission.depth(), 0);
  EXPECT_EQ(metrics.GetCounter("serve.shed")->value(), 1);
  EXPECT_TRUE(manager.FirstError().ok());
  // Unknown session (queue has room): submission error, not a shed, and
  // the reserved slot is returned.
  EXPECT_EQ(admission.Submit(99, MakeResolve()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(admission.depth(), 0);
  EXPECT_EQ(admission.shed_count(), 1);
}

// --- Resolve coalescing ----------------------------------------------------

TEST(CoalescingTest, PendingResolvesFoldIntoOneSolve) {
  // Pin the single worker, enqueue pref/resolve interleavings, release:
  // coalescing must fold the three resolves into ONE Resolve() whose
  // report answers all three, and the final configuration must equal a
  // serial session that applied the same mutations with a single resolve
  // (same seed + same resolve count => bit-identical rounding).
  const SvgicInstance base = RandomInstance(10, 16, 3, 0.5, 21);
  SessionOptions session_options;
  session_options.seed = 5;

  SessionManagerOptions options;
  options.num_workers = 1;
  options.coalesce_resolves = true;
  SessionManager manager(options);
  const int id = manager.CreateSession(base, session_options);

  std::promise<void> entered, release;
  auto entered_future = entered.get_future();
  std::shared_future<void> release_future(release.get_future());
  ASSERT_TRUE(manager
                  .Submit(id, MakePref(9, 0, 0.9),
                          [&entered, release_future](const Status&,
                                                     const CommandOutcome&) {
                            entered.set_value();
                            release_future.wait();
                          })
                  .ok());
  entered_future.wait();

  std::mutex mu;
  std::vector<CommandOutcome> outcomes;
  std::vector<Status> statuses;
  auto collect = [&mu, &outcomes, &statuses](const Status& status,
                                             const CommandOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mu);
    statuses.push_back(status);
    outcomes.push_back(outcome);
  };
  ASSERT_TRUE(manager.Submit(id, MakePref(0, 1, 0.8)).ok());
  ASSERT_TRUE(manager.Submit(id, MakeResolve(), collect).ok());
  ASSERT_TRUE(manager.Submit(id, MakePref(1, 2, 0.7)).ok());
  ASSERT_TRUE(manager.Submit(id, MakeResolve(), collect).ok());
  ASSERT_TRUE(manager.Submit(id, MakePref(2, 3, 0.6)).ok());
  ASSERT_TRUE(manager.Submit(id, MakeResolve(), collect).ok());
  release.set_value();
  manager.Drain();

  ASSERT_EQ(outcomes.size(), 3u);
  int performed = 0, folded = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i];
    EXPECT_TRUE(outcomes[i].resolved);
    EXPECT_EQ(outcomes[i].coalesced, 2);
    EXPECT_EQ(outcomes[i].report.scaled_total,
              outcomes[0].report.scaled_total);
    outcomes[i].coalesced_away ? ++folded : ++performed;
  }
  EXPECT_EQ(performed, 1);  // exactly one request paid the solve
  EXPECT_EQ(folded, 2);

  auto stats = manager.GetStats(id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resolves, 1);
  EXPECT_EQ(stats->resolves_coalesced, 2);

  // Serial reference: same mutations, ONE resolve, same seed.
  Session reference(base, session_options);
  ASSERT_TRUE(reference.Apply(MakePref(9, 0, 0.9)).ok());
  ASSERT_TRUE(reference.Apply(MakePref(0, 1, 0.8)).ok());
  ASSERT_TRUE(reference.Apply(MakePref(1, 2, 0.7)).ok());
  ASSERT_TRUE(reference.Apply(MakePref(2, 3, 0.6)).ok());
  auto ref_outcome = reference.Apply(MakeResolve());
  ASSERT_TRUE(ref_outcome.ok()) << ref_outcome.status();

  const Configuration& coalesced_config = manager.session(id).config();
  const Configuration& reference_config = reference.config();
  ASSERT_EQ(coalesced_config.num_users(), reference_config.num_users());
  for (UserId u = 0; u < reference_config.num_users(); ++u) {
    EXPECT_EQ(coalesced_config.ItemsOf(u), reference_config.ItemsOf(u))
        << "user " << u;
  }
  EXPECT_EQ(outcomes[0].report.scaled_total,
            ref_outcome->report.scaled_total);

  // And N individual resolves (no coalescing) reach the same LP optimum:
  // the configurations may differ (different per-resolve RNG streams) but
  // the final objective is the optimum of the same mutated instance.
  Session individual(base, session_options);
  ASSERT_TRUE(individual.Apply(MakePref(9, 0, 0.9)).ok());
  ASSERT_TRUE(individual.Apply(MakePref(0, 1, 0.8)).ok());
  ASSERT_TRUE(individual.Apply(MakeResolve()).ok());
  ASSERT_TRUE(individual.Apply(MakePref(1, 2, 0.7)).ok());
  ASSERT_TRUE(individual.Apply(MakeResolve()).ok());
  ASSERT_TRUE(individual.Apply(MakePref(2, 3, 0.6)).ok());
  auto last = individual.Apply(MakeResolve());
  ASSERT_TRUE(last.ok());
  EXPECT_NEAR(last->report.lp_objective, outcomes[0].report.lp_objective,
              1e-6 * std::max(1.0, std::abs(last->report.lp_objective)));
}

TEST(CoalescingTest, DisabledCoalescingRunsEverySolve) {
  SessionManagerOptions options;
  options.num_workers = 1;
  options.coalesce_resolves = false;
  SessionManager manager(options);
  const int id = manager.CreateSession(RandomInstance(8, 12, 2, 0.5, 23));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager.Submit(id, MakePref(i, i, 0.5 + 0.1 * i)).ok());
    ASSERT_TRUE(manager.Submit(id, MakeResolve()).ok());
  }
  manager.Drain();
  auto stats = manager.GetStats(id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resolves, 3);
  EXPECT_EQ(stats->resolves_coalesced, 0);
}

// --- End-to-end over a real socket -----------------------------------------

/// Raw TCP helper for malformed-bytes tests (ServeClient only speaks
/// well-formed frames).
class RawConnection {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool Send(const std::string& bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), 0) ==
           static_cast<ssize_t>(bytes.size());
  }
  ssize_t Recv(char* buf, size_t size) { return ::recv(fd_, buf, size, 0); }
  /// Reads until EOF (the server drops bad-frame connections).
  std::string ReadAll() {
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_ = -1;
};

TEST(ServeServerTest, EndToEndApplyResolveAndStatus) {
  ServerOptions options;
  options.num_workers = 2;
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(10, 16, 3, 0.5, 31));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto pong = client.SendPing();
  ASSERT_TRUE(pong.ok());
  auto pong_response = client.ReadResponse();
  ASSERT_TRUE(pong_response.ok()) << pong_response.status();
  EXPECT_EQ(pong_response->kind, FrameKind::kOk);
  EXPECT_EQ(pong_response->request_id, *pong);

  auto mutation = client.Apply(session, MakePref(0, 1, 0.8));
  ASSERT_TRUE(mutation.ok()) << mutation.status();
  EXPECT_EQ(mutation->kind, FrameKind::kOk);

  auto join = client.Apply(session, MakeJoin());
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(join->has_result);
  EXPECT_EQ(join->result.assigned_id, 10);  // n was 10

  auto resolve = client.Apply(session, MakeResolve());
  ASSERT_TRUE(resolve.ok()) << resolve.status();
  ASSERT_EQ(resolve->kind, FrameKind::kOk);
  ASSERT_TRUE(resolve->has_result);
  EXPECT_TRUE(resolve->result.resolved);
  EXPECT_GT(resolve->result.lp_objective, 0.0);
  EXPECT_GT(resolve->result.scaled_total, 0.0);
  EXPECT_GT(resolve->result.resolve_seconds, 0.0);

  // A command against an unknown session answers kError, not a drop.
  auto bad_session = client.Apply(99, MakeResolve());
  ASSERT_TRUE(bad_session.ok());
  EXPECT_EQ(bad_session->kind, FrameKind::kError);

  // An invalid mutation (out-of-range user) answers kError too.
  auto bad_mutation = client.Apply(session, MakePref(500, 0, 0.5));
  ASSERT_TRUE(bad_mutation.ok());
  EXPECT_EQ(bad_mutation->kind, FrameKind::kError);

  auto status_json = client.FetchStatus();
  ASSERT_TRUE(status_json.ok()) << status_json.status();
  EXPECT_NE(status_json->find("\"sessions\""), std::string::npos);
  EXPECT_NE(status_json->find("\"coalesce_ratio\""), std::string::npos);
  EXPECT_NE(status_json->find("\"admitted\""), std::string::npos);

  // Pipelined mutations: all answered, ids echoed.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = client.SendApply(session, MakePref(i % 10, i % 16, 0.5));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::vector<uint64_t> answered;
  for (int i = 0; i < 10; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->kind, FrameKind::kOk);
    answered.push_back(response->request_id);
  }
  std::sort(answered.begin(), answered.end());
  EXPECT_EQ(answered, ids);

  server.Shutdown();
}

TEST(ServeServerTest, MalformedFramesGetBadRequestAndDrop) {
  ServeServer server;
  server.CreateSession(RandomInstance(8, 12, 2, 0.5, 33));
  ASSERT_TRUE(server.Start().ok());

  {  // Good magic, bad version: one kBadRequest response, then EOF.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string frame;
    AppendFrame(FrameKind::kPing, 1, 0, "", &frame);
    frame[4] = 9;  // unsupported version
    ASSERT_TRUE(conn.Send(frame));
    const std::string response = conn.ReadAll();
    ASSERT_GE(response.size(), kFrameHeaderBytes);
    EXPECT_EQ(response.compare(0, 4, "SVGF"), 0);
    EXPECT_EQ(static_cast<FrameKind>(
                  static_cast<uint8_t>(response[5])),
              FrameKind::kBadRequest);
  }
  {  // Oversized payload length: rejected without allocating 4 GB.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string frame;
    AppendFrame(FrameKind::kApply, 2, 0, "", &frame);
    frame[20] = frame[21] = frame[22] = frame[23] = static_cast<char>(0xFF);
    ASSERT_TRUE(conn.Send(frame));
    const std::string response = conn.ReadAll();
    ASSERT_GE(response.size(), kFrameHeaderBytes);
    EXPECT_EQ(static_cast<FrameKind>(
                  static_cast<uint8_t>(response[5])),
              FrameKind::kBadRequest);
  }
  {  // Valid frame, garbage command payload: kBadRequest, stream survives.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    std::string frame;
    AppendFrame(FrameKind::kApply, 3, 0, std::string(5, '\xEE'), &frame);
    AppendFrame(FrameKind::kPing, 4, 0, "", &frame);
    ASSERT_TRUE(conn.Send(frame));
    // Two responses arrive (kBadRequest for the garbage command, then the
    // ping's kOk — the framing stayed intact, so the connection survives).
    FrameReader reader;
    int seen = 0;
    FrameKind kinds[2] = {FrameKind::kOk, FrameKind::kOk};
    while (seen < 2) {
      char buf[1024];
      const ssize_t n = conn.Recv(buf, sizeof(buf));
      if (n <= 0) break;
      reader.Feed(buf, static_cast<size_t>(n));
      for (;;) {
        FrameHeader header;
        std::string body;
        auto next = reader.Next(&header, &body);
        ASSERT_TRUE(next.ok());
        if (!*next) break;
        ASSERT_LT(seen, 2);
        kinds[seen++] = header.kind;
      }
    }
    ASSERT_EQ(seen, 2);
    EXPECT_EQ(kinds[0], FrameKind::kBadRequest);
    EXPECT_EQ(kinds[1], FrameKind::kOk);
  }
  server.Shutdown();
}

TEST(ServeServerTest, FlashCrowdShedsOverloadedResponses) {
  ServerOptions options;
  options.num_workers = 1;
  options.admission.max_queue_depth = 4;
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(10, 16, 3, 0.5, 35));
  ASSERT_TRUE(server.Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Open loop: blast resolves far past the admission bound, then drain.
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.SendApply(session, MakeResolve()).ok());
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->kind == FrameKind::kOverloaded) {
      ++overloaded;
    } else if (response->kind == FrameKind::kOk) {
      ++ok;
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(overloaded, 0) << "no shedding under a 16x overload burst";
  EXPECT_GT(ok, 0);
  EXPECT_EQ(server.admission().shed_count(), overloaded);
  server.Shutdown();
}

TEST(ServeServerTest, HttpFallbackServesStatusAndMetrics) {
  ServeServer server;
  server.CreateSession(RandomInstance(8, 12, 2, 0.5, 37));
  ASSERT_TRUE(server.Start().ok());

  {
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /metrics HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"), std::string::npos);
    EXPECT_NE(response.find("serve.queue_depth"), std::string::npos);
  }
  {
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /status HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"sessions\""), std::string::npos);
  }
  {
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /nope HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("404"), std::string::npos);
  }
  server.Shutdown();
}

// --- Request tracing -------------------------------------------------------

int FindSpan(const Trace& trace, const std::string& name) {
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t FindCounter(const TraceSpan& span, const std::string& key) {
  for (const auto& kv : span.counters) {
    if (kv.first == key) return kv.second;
  }
  return -1;
}

/// The determinism-relevant view of a trace: names, nesting, counters and
/// labels — everything except ids and timings (the contract of
/// src/obs/trace.h).
std::string StructureString(const Trace& trace) {
  std::string out = trace.name + "|" + trace.status;
  for (const TraceSpan& span : trace.spans) {
    out += ";" + span.name + "(";
    out += span.parent >= 0 ? trace.spans[span.parent].name : "-";
    out += ")";
    for (const auto& kv : span.counters) {
      out += " " + kv.first + "=" + std::to_string(kv.second);
    }
    for (const auto& kv : span.labels) {
      out += " " + kv.first + "=" + kv.second;
    }
  }
  return out;
}

TEST(ServeTraceTest, ForcedResolveCollectsNestedSpans) {
  ServerOptions options;
  options.num_workers = 2;
  options.trace.sample_every = 0;  // trace only wire-flagged requests
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(10, 16, 3, 0.5, 41));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  auto mutation = client.Apply(session, MakePref(0, 1, 0.8), /*trace=*/true);
  ASSERT_TRUE(mutation.ok()) << mutation.status();
  auto resolve = client.Apply(session, MakeResolve(), /*trace=*/true);
  ASSERT_TRUE(resolve.ok()) << resolve.status();
  ASSERT_TRUE(resolve->has_result);

  const std::vector<Trace> traces = server.tracer().LastTraces(8);
  ASSERT_EQ(traces.size(), 2u);  // exactly the two flagged requests
  const Trace& mutation_trace = traces.front();
  EXPECT_TRUE(mutation_trace.forced);
  EXPECT_GE(FindSpan(mutation_trace, "session.apply"), 0);

  const Trace& trace = traces.back();
  EXPECT_EQ(trace.name, "resolve");
  EXPECT_EQ(trace.status, "ok");
  EXPECT_GT(trace.total_nanos, 0);

  // The span tree nests admission -> session -> lp -> phases, plus the
  // rounding stage.
  const int wait = FindSpan(trace, "admission.wait");
  const int apply = FindSpan(trace, "session.apply");
  const int build = FindSpan(trace, "lp.build");
  const int solve = FindSpan(trace, "lp.solve");
  const int presolve = FindSpan(trace, "lp.presolve");
  const int round = FindSpan(trace, "csf.round");
  ASSERT_GE(wait, 0);
  ASSERT_GE(apply, 0);
  ASSERT_GE(build, 0);
  ASSERT_GE(solve, 0);
  ASSERT_GE(presolve, 0);
  ASSERT_GE(round, 0);
  EXPECT_EQ(trace.spans[wait].parent, -1);
  EXPECT_EQ(trace.spans[apply].parent, -1);
  EXPECT_EQ(trace.spans[build].parent, apply);
  EXPECT_EQ(trace.spans[solve].parent, apply);
  EXPECT_EQ(trace.spans[presolve].parent, solve);
  EXPECT_TRUE(trace.spans[presolve].bridged);
  EXPECT_EQ(trace.spans[round].parent, apply);
  // Every LP phase child is present even when a phase did no work.
  for (const char* phase : {"lp.pricing", "lp.ratio_test", "lp.ftran",
                            "lp.btran", "lp.factor"}) {
    EXPECT_GE(FindSpan(trace, phase), 0) << phase;
  }

  // The span counters agree with what the wire reported back.
  EXPECT_EQ(FindCounter(trace.spans[apply], "pivots"),
            resolve->result.pivots);
  EXPECT_GE(FindCounter(trace.spans[round], "rerounded_units"), 0);

  // Stage histograms got folded.
  EXPECT_GT(server.metrics().GetHistogram("serve.stage.solve")->count(), 0);
  EXPECT_GT(
      server.metrics().GetHistogram("serve.stage.admission")->count(), 0);
  server.Shutdown();
}

TEST(ServeTraceTest, HttpTraceEndpointServesChromeJsonAndText) {
  ServerOptions options;
  options.trace.sample_every = 0;
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(8, 12, 2, 0.5, 42));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto resolve = client.Apply(session, MakeResolve(), /*trace=*/true);
  ASSERT_TRUE(resolve.ok());

  {  // Chrome trace-event JSON (Perfetto-loadable).
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /trace?last=8 HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(response.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(response.find("lp.solve"), std::string::npos);
  }
  {  // Human-readable tree.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /trace?last=8&format=text HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain"), std::string::npos);
    EXPECT_NE(response.find("session.apply"), std::string::npos);
  }
  server.Shutdown();
}

/// Replays a fixed traced command stream against a server with `workers`
/// worker threads and returns every trace's structure string.
std::vector<std::string> RunTracedStream(int workers) {
  ServerOptions options;
  options.num_workers = workers;
  options.trace.sample_every = 0;
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(12, 18, 3, 0.5, 43));
  EXPECT_TRUE(server.Start().ok());
  ServeClient client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      auto r = client.Apply(session,
                            MakePref((round * 4 + i) % 12, (round + i) % 18,
                                     0.3 + 0.05 * i),
                            /*trace=*/true);
      EXPECT_TRUE(r.ok()) << r.status();
    }
    auto resolve = client.Apply(session, MakeResolve(), /*trace=*/true);
    EXPECT_TRUE(resolve.ok()) << resolve.status();
  }
  std::vector<std::string> structures;
  for (const Trace& trace : server.tracer().LastTraces(64)) {
    structures.push_back(StructureString(trace));
  }
  server.Shutdown();
  return structures;
}

TEST(ServeTraceTest, SpanStructureIsIdenticalAcrossWorkerCounts) {
  // The determinism contract of src/obs/trace.h, end to end: a fixed
  // closed-loop command stream yields bit-identical span structures
  // (names, nesting, counters, labels) for any worker count.
  const std::vector<std::string> one = RunTracedStream(1);
  ASSERT_EQ(one.size(), 15u);  // 3 rounds x (4 mutations + 1 resolve)
  EXPECT_EQ(RunTracedStream(2), one);
  EXPECT_EQ(RunTracedStream(4), one);
}

// --- Windowed metrics, health, self-verification over the wire -------------

TEST(ServeServerTest, HttpServesHealthAndWindowedMetrics) {
  ServerOptions options;
  options.metrics_interval_seconds = 0;  // captures driven by the test
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(8, 12, 2, 0.5, 51));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Apply(session, MakePref(0, 1, 0.8)).ok());
  auto resolve = client.Apply(session, MakeResolve());
  ASSERT_TRUE(resolve.ok());
  server.CaptureMetricsWindow(/*interval_seconds=*/1.0);

  {  // /health: 200 + ok verdict on a quiet server.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /health HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
  }
  {  // /metrics?window=1: the windowed aggregate, not the lifetime dump.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /metrics?window=1 HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"windows\": 1"), std::string::npos);
    // The window saw the two applies: delta 2 at 2/s over the 1s window.
    EXPECT_NE(response.find("{\"name\": \"serve.admitted\", \"delta\": 2, "
                            "\"rate\": 2}"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("serve.latency.resolve"), std::string::npos);
  }
  {  // /metrics.prom: Prometheus text exposition.
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /metrics.prom HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("# TYPE savg_serve_admitted counter"),
              std::string::npos);
    EXPECT_NE(
        response.find("savg_serve_latency_resolve_seconds_bucket{le="),
        std::string::npos);
  }
  // /status carries the health verdict alongside the metrics splice.
  auto status_json = client.FetchStatus();
  ASSERT_TRUE(status_json.ok());
  EXPECT_NE(status_json->find("\"health\": {\"status\": \"ok\""),
            std::string::npos);
  server.Shutdown();
}

TEST(ServeServerTest, QueueDepthGaugeReturnsToZeroAfterAllPaths) {
  // Regression for the serve.queue_depth gauge accounting: sheds must
  // back out their increment, submit errors must return the reserved
  // slot, and completions must decrement — after a mix of all three
  // plus shutdown, the gauge must read exactly zero.
  ServerOptions options;
  options.num_workers = 1;
  options.admission.max_queue_depth = 4;
  options.metrics_interval_seconds = 0;
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(10, 16, 3, 0.5, 53));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Shed path: open-loop burst far past the bound.
  constexpr int kBurst = 48;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.SendApply(session, MakeResolve()).ok());
  }
  int overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->kind == FrameKind::kOverloaded) ++overloaded;
  }
  EXPECT_GT(overloaded, 0);

  // Submit-error path: unknown session returns the reserved slot.
  auto bad_session = client.Apply(99, MakeResolve());
  ASSERT_TRUE(bad_session.ok());
  EXPECT_EQ(bad_session->kind, FrameKind::kError);
  // Command-error path: invalid mutation completes with an error status.
  auto bad_mutation = client.Apply(session, MakePref(500, 0, 0.5));
  ASSERT_TRUE(bad_mutation.ok());
  EXPECT_EQ(bad_mutation->kind, FrameKind::kError);

  server.manager().Drain();
  EXPECT_EQ(server.admission().depth(), 0u);
  EXPECT_EQ(server.metrics().GetGauge("serve.queue_depth")->value(), 0);

  server.Shutdown();
  EXPECT_EQ(server.metrics().GetGauge("serve.queue_depth")->value(), 0);
}

TEST(ServeServerTest, InjectedVerifyFailureFlipsHealthEndToEnd) {
  // The tentpole e2e: a forced self-verification failure must flip
  // GET /health to 503/unhealthy within one capture window, and clean
  // windows must recover it — all through real sockets.
  ServerOptions options;
  options.metrics_interval_seconds = 0;  // captures driven by the test
  options.verify.sample_every = 0;       // only wire-flagged requests
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(10, 16, 3, 0.5, 55));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // A verified resolve on a healthy solver passes.
  auto ok_resolve = client.Apply(session, MakeResolve(), /*trace=*/false,
                                 /*verify=*/true);
  ASSERT_TRUE(ok_resolve.ok()) << ok_resolve.status();
  EXPECT_EQ(ok_resolve->kind, FrameKind::kOk);
  server.verifier().Flush();
  EXPECT_EQ(server.metrics().GetCounter("verify.pass")->value(), 1);
  EXPECT_EQ(server.metrics().GetCounter("verify.fail")->value(), 0);
  server.CaptureMetricsWindow(1.0);
  {
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /health HTTP/1.0\r\n\r\n"));
    EXPECT_NE(conn.ReadAll().find("200 OK"), std::string::npos);
  }

  // Inject a fault: the next verified resolve fails its self-check and
  // the following window trips the verdict straight to unhealthy.
  server.verifier().InjectFailures(true);
  ASSERT_TRUE(client
                  .Apply(session, MakeResolve(), /*trace=*/false,
                         /*verify=*/true)
                  .ok());
  server.verifier().Flush();
  EXPECT_EQ(server.metrics().GetCounter("verify.fail")->value(), 1);
  server.CaptureMetricsWindow(1.0);
  {
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /health HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("503"), std::string::npos) << response;
    EXPECT_NE(response.find("\"status\": \"unhealthy\""),
              std::string::npos);
    EXPECT_NE(response.find("\"verify_failure\""), std::string::npos);
  }

  // Clear the fault: recover_after clean windows restore the verdict.
  server.verifier().InjectFailures(false);
  server.CaptureMetricsWindow(1.0);
  server.CaptureMetricsWindow(1.0);
  {
    RawConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()));
    ASSERT_TRUE(conn.Send("GET /health HTTP/1.0\r\n\r\n"));
    const std::string response = conn.ReadAll();
    EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
  }
  server.Shutdown();
}

TEST(ServeServerTest, SampledVerificationPassesOnACommandStream) {
  // With 1-in-1 sampling every resolve self-verifies; a healthy solver
  // must pass all of them (monolithic KKT audits included).
  ServerOptions options;
  options.metrics_interval_seconds = 0;
  options.verify.sample_every = 1;
  ServeServer server(options);
  const int session =
      server.CreateSession(RandomInstance(10, 16, 3, 0.5, 57));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          client.Apply(session, MakePref((round + i) % 10, i % 16, 0.6))
              .ok());
    }
    auto resolve = client.Apply(session, MakeResolve());
    ASSERT_TRUE(resolve.ok());
    EXPECT_EQ(resolve->kind, FrameKind::kOk);
  }
  server.verifier().Flush();
  EXPECT_EQ(server.metrics().GetCounter("verify.fail")->value(), 0);
  EXPECT_GE(server.metrics().GetCounter("verify.pass")->value(), 4);
  server.Shutdown();
}

TEST(ServeServerTest, ShutdownFrameStopsTheServer) {
  ServeServer server;
  server.CreateSession(RandomInstance(8, 12, 2, 0.5, 39));
  ASSERT_TRUE(server.Start().ok());
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendShutdown().ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, FrameKind::kOk);
  server.WaitForShutdown();  // must return promptly after the frame
  server.Shutdown();
}

}  // namespace
}  // namespace savg
