#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/community.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sampling.h"

namespace savg {
namespace {

TEST(GraphTest, AddAndFindEdges) {
  SocialGraph g(4);
  auto e = g.AddEdge(0, 1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 0);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.FindEdge(0, 1), 0);
  EXPECT_EQ(g.FindEdge(1, 0), -1);
}

TEST(GraphTest, RejectsSelfLoopsAndDuplicates) {
  SocialGraph g(3);
  EXPECT_FALSE(g.AddEdge(0, 0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(0, 1).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(0, 9).status().code(), StatusCode::kOutOfRange);
}

TEST(GraphTest, UndirectedEdgeAddsBothDirections) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddUndirectedEdge(0, 2).ok());
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.NumUndirectedPairs(), 1);
}

TEST(GraphTest, DensityOfCompleteGraph) {
  SocialGraph g = CompleteGraph(5);
  EXPECT_DOUBLE_EQ(g.UndirectedDensity(), 1.0);
  EXPECT_EQ(g.NumUndirectedPairs(), 10);
}

TEST(GraphTest, InducedSubgraph) {
  SocialGraph g(5);
  ASSERT_TRUE(g.AddUndirectedEdge(0, 1).ok());
  ASSERT_TRUE(g.AddUndirectedEdge(1, 2).ok());
  ASSERT_TRUE(g.AddUndirectedEdge(3, 4).ok());
  std::vector<UserId> keep = {0, 1, 3};
  std::vector<UserId> mapping;
  SocialGraph sub = g.InducedSubgraph(keep, &mapping);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.NumUndirectedPairs(), 1);  // only (0,1) survives
  EXPECT_EQ(mapping[0], 0);
  EXPECT_EQ(mapping[1], 1);
  EXPECT_EQ(mapping[2], -1);
  EXPECT_EQ(mapping[3], 2);
}

TEST(GraphTest, EgoNetworkHops) {
  // Path 0-1-2-3-4.
  SocialGraph g(5);
  for (int i = 0; i + 1 < 5; ++i) ASSERT_TRUE(g.AddUndirectedEdge(i, i + 1).ok());
  auto ego1 = g.EgoNetwork(2, 1);
  EXPECT_EQ(ego1, (std::vector<UserId>{1, 2, 3}));
  auto ego2 = g.EgoNetwork(0, 2);
  EXPECT_EQ(ego2, (std::vector<UserId>{0, 1, 2}));
}

TEST(GraphTest, CountInducedPairs) {
  SocialGraph g = CompleteGraph(4);
  EXPECT_EQ(g.CountInducedPairs({0, 1, 2}), 3);
  EXPECT_EQ(g.CountInducedPairs({0}), 0);
}

TEST(GeneratorsTest, ErdosRenyiDensityApproximatesP) {
  Rng rng(5);
  SocialGraph g = ErdosRenyi(60, 0.3, &rng);
  EXPECT_NEAR(g.UndirectedDensity(), 0.3, 0.08);
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  Rng rng(5);
  EXPECT_EQ(ErdosRenyi(10, 0.0, &rng).num_edges(), 0);
  EXPECT_EQ(ErdosRenyi(10, 1.0, &rng).NumUndirectedPairs(), 45);
}

TEST(GeneratorsTest, WattsStrogatzDegreeRoughlyPreserved) {
  Rng rng(7);
  SocialGraph g = WattsStrogatz(40, 3, 0.1, &rng);
  // Ring lattice would have exactly 3*40 undirected edges; rewiring keeps
  // the count within a small slack (some rewires collide and are skipped).
  EXPECT_GE(g.NumUndirectedPairs(), 100);
  EXPECT_LE(g.NumUndirectedPairs(), 120);
}

TEST(GeneratorsTest, BarabasiAlbertHubsEmerge) {
  Rng rng(9);
  SocialGraph g = BarabasiAlbert(200, 2, &rng);
  int max_deg = 0;
  double total_deg = 0;
  for (int u = 0; u < g.num_vertices(); ++u) {
    max_deg = std::max(max_deg, g.OutDegree(u));
    total_deg += g.OutDegree(u);
  }
  const double avg_deg = total_deg / g.num_vertices();
  EXPECT_GT(max_deg, 3 * avg_deg);  // heavy tail
}

TEST(GeneratorsTest, PlantedPartitionHasCommunityStructure) {
  Rng rng(11);
  std::vector<int> blocks;
  SocialGraph g = PlantedPartition(60, 3, 0.5, 0.02, &rng, &blocks);
  ASSERT_EQ(blocks.size(), 60u);
  int intra = 0, inter = 0;
  for (const Edge& e : g.edges()) {
    if (e.u < e.v) {
      (blocks[e.u] == blocks[e.v] ? intra : inter)++;
    }
  }
  EXPECT_GT(intra, 5 * inter);
}

TEST(SamplingTest, RandomWalkSampleSizeAndDistinct) {
  Rng rng(13);
  SocialGraph g = ErdosRenyi(100, 0.1, &rng);
  auto sample = RandomWalkSample(g, 30, 0.15, &rng);
  ASSERT_EQ(sample.size(), 30u);
  std::set<UserId> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
}

TEST(SamplingTest, RandomWalkHandlesIsolatedVertices) {
  Rng rng(13);
  SocialGraph g(10);  // no edges at all
  auto sample = RandomWalkSample(g, 5, 0.15, &rng);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(SamplingTest, UniformSampleClampsToN) {
  Rng rng(13);
  SocialGraph g(5);
  EXPECT_EQ(UniformVertexSample(g, 50, &rng).size(), 5u);
}

TEST(CommunityTest, LabelPropagationSeparatesCliques) {
  // Two 6-cliques joined by one edge.
  SocialGraph g(12);
  for (int a = 0; a < 6; ++a)
    for (int b = a + 1; b < 6; ++b) ASSERT_TRUE(g.AddUndirectedEdge(a, b).ok());
  for (int a = 6; a < 12; ++a)
    for (int b = a + 1; b < 12; ++b)
      ASSERT_TRUE(g.AddUndirectedEdge(a, b).ok());
  ASSERT_TRUE(g.AddUndirectedEdge(0, 6).ok());
  Rng rng(17);
  Partition p = LabelPropagation(g, 20, &rng);
  EXPECT_EQ(p.num_communities, 2);
  for (int u = 1; u < 6; ++u) EXPECT_EQ(p.community[u], p.community[0]);
  for (int u = 7; u < 12; ++u) EXPECT_EQ(p.community[u], p.community[6]);
}

TEST(CommunityTest, GreedyModularitySeparatesCliques) {
  SocialGraph g(10);
  for (int a = 0; a < 5; ++a)
    for (int b = a + 1; b < 5; ++b) ASSERT_TRUE(g.AddUndirectedEdge(a, b).ok());
  for (int a = 5; a < 10; ++a)
    for (int b = a + 1; b < 10; ++b)
      ASSERT_TRUE(g.AddUndirectedEdge(a, b).ok());
  ASSERT_TRUE(g.AddUndirectedEdge(4, 5).ok());
  Partition p = GreedyModularity(g);
  EXPECT_EQ(p.num_communities, 2);
  EXPECT_GT(Modularity(g, p), 0.3);
}

TEST(CommunityTest, ModularityOfSingletonPartitionIsNegative) {
  SocialGraph g = CompleteGraph(4);
  Partition p;
  p.community = {0, 1, 2, 3};
  p.num_communities = 4;
  EXPECT_LT(Modularity(g, p), 0.0);
}

TEST(CommunityTest, BalancedPartitionRespectsMaxSize) {
  Rng rng(23);
  SocialGraph g = ErdosRenyi(23, 0.2, &rng);
  Partition p = BalancedPartition(g, 5, &rng);
  auto groups = p.Groups();
  ASSERT_EQ(groups.size(), 5u);  // ceil(23/5)
  for (const auto& grp : groups) EXPECT_LE(grp.size(), 5u);
  size_t total = 0;
  for (const auto& grp : groups) total += grp.size();
  EXPECT_EQ(total, 23u);
}

TEST(CommunityTest, NormalizeCompactsIds) {
  Partition p;
  p.community = {7, 7, 3, 9};
  p.num_communities = 10;
  Normalize(&p);
  EXPECT_EQ(p.num_communities, 3);
  EXPECT_EQ(p.community[0], p.community[1]);
  EXPECT_NE(p.community[0], p.community[2]);
}

}  // namespace
}  // namespace savg
