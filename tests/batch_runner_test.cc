#include "experiments/batch_runner.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "util/thread_pool.h"

namespace savg {
namespace {

std::vector<SvgicInstance> MakeInstances(int count) {
  std::vector<SvgicInstance> instances;
  for (int i = 0; i < count; ++i) {
    DatasetParams params;
    params.kind = i % 2 == 0 ? DatasetKind::kTimik : DatasetKind::kYelp;
    params.num_users = 8;
    params.num_items = 12;
    params.num_slots = 3;
    params.seed = 100 + 31 * i;
    auto inst = GenerateDataset(params);
    EXPECT_TRUE(inst.ok()) << inst.status();
    instances.push_back(std::move(inst).value());
  }
  return instances;
}

std::vector<const SvgicInstance*> Pointers(
    const std::vector<SvgicInstance>& instances) {
  std::vector<const SvgicInstance*> ptrs;
  for (const SvgicInstance& inst : instances) ptrs.push_back(&inst);
  return ptrs;
}

Result<BatchReport> RunWithWorkers(
    const std::vector<const SvgicInstance*>& instances, int workers,
    int repeats) {
  BatchOptions options;
  options.num_workers = workers;
  options.repeats = repeats;
  options.base_seed = 42;
  options.solver.avg_repeats = 2;
  BatchRunner runner(options);
  return runner.Run(instances,
                    std::vector<std::string>{"AVG", "AVG-D", "GRF", "IR"});
}

std::string ConfigFingerprint(const Configuration& config) {
  std::string out;
  for (UserId u = 0; u < config.num_users(); ++u) {
    for (SlotId s = 0; s < config.num_slots(); ++s) {
      out += std::to_string(config.At(u, s));
      out += ',';
    }
  }
  return out;
}

TEST(BatchRunnerTest, ResultsAreIdenticalForOneAndEightWorkers) {
  const auto instances = MakeInstances(3);
  auto serial = RunWithWorkers(Pointers(instances), 1, 2);
  auto parallel = RunWithWorkers(Pointers(instances), 8, 2);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_TRUE(serial->FirstError().ok()) << serial->FirstError();
  ASSERT_TRUE(parallel->FirstError().ok()) << parallel->FirstError();
  ASSERT_EQ(serial->tasks.size(), parallel->tasks.size());
  for (size_t t = 0; t < serial->tasks.size(); ++t) {
    const SolverRun& a = serial->tasks[t].run;
    const SolverRun& b = parallel->tasks[t].run;
    EXPECT_EQ(a.solver, b.solver);
    // Bit-identical objective and identical configurations: seeds derive
    // from task indices, never from scheduling.
    EXPECT_EQ(a.scaled_total, b.scaled_total) << a.solver << " task " << t;
    EXPECT_EQ(ConfigFingerprint(a.config), ConfigFingerprint(b.config))
        << a.solver << " task " << t;
  }
}

TEST(BatchRunnerTest, RepeatsDifferButAreReproducible) {
  const auto instances = MakeInstances(1);
  auto first = RunWithWorkers(Pointers(instances), 4, 3);
  auto second = RunWithWorkers(Pointers(instances), 2, 3);
  ASSERT_TRUE(first.ok() && second.ok());
  // Same (instance, solver, repeat) cell reproduces across runs...
  for (size_t t = 0; t < first->tasks.size(); ++t) {
    EXPECT_EQ(first->tasks[t].run.scaled_total,
              second->tasks[t].run.scaled_total);
  }
  // ...while randomized repeats draw distinct seeds.
  EXPECT_NE(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(42, 0, "AVG", 1));
  EXPECT_NE(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(42, 1, "AVG", 0));
  EXPECT_NE(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(43, 0, "AVG", 0));
  // Case differences must not change a solver's seed stream.
  EXPECT_EQ(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(42, 0, "avg", 0));
}

TEST(BatchRunnerTest, LpRelaxationSolvedExactlyOncePerInstance) {
  const auto instances = MakeInstances(2);
  const int repeats = 3;
  BatchOptions options;
  options.num_workers = 4;
  options.repeats = repeats;
  options.solver.avg_repeats = 3;
  BatchRunner runner(options);
  // Three relaxation consumers x 2 instances x 3 repeats.
  auto report = runner.Run(
      Pointers(instances), std::vector<std::string>{"AVG", "AVG-D", "AVG+LS"});
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->FirstError().ok()) << report->FirstError();
  EXPECT_EQ(report->lp_cache_misses, 2);  // one solve per instance
  EXPECT_EQ(report->lp_cache_hits, 2 * 3 * repeats - 2);
  for (const BatchTaskResult& task : report->tasks) {
    EXPECT_TRUE(task.run.used_shared_relaxation) << task.run.solver;
    EXPECT_GT(task.run.scaled_total, 0.0);
  }
}

TEST(BatchRunnerTest, SolversWithoutRelaxationSkipTheCache) {
  const auto instances = MakeInstances(1);
  BatchOptions options;
  options.num_workers = 2;
  BatchRunner runner(options);
  auto report = runner.Run(Pointers(instances),
                           std::vector<std::string>{"PER", "FMG", "SDP"});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->lp_cache_misses, 0);
  EXPECT_EQ(report->lp_cache_hits, 0);
}

TEST(BatchRunnerTest, UnknownSolverNameFailsUpFront) {
  const auto instances = MakeInstances(1);
  BatchRunner runner;
  auto report = runner.Run(Pointers(instances),
                           std::vector<std::string>{"AVG", "nope"});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(BatchRunnerTest, EmptyBatchIsInvalid) {
  BatchRunner runner;
  auto no_instances =
      runner.Run({}, std::vector<std::string>{"AVG"});
  EXPECT_EQ(no_instances.status().code(), StatusCode::kInvalidArgument);
  const auto instances = MakeInstances(1);
  auto no_solvers =
      runner.Run(Pointers(instances), std::vector<std::string>{});
  EXPECT_EQ(no_solvers.status().code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, RunsAllTasksAndWaits) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after a Wait().
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

}  // namespace
}  // namespace savg
