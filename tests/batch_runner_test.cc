#include "experiments/batch_runner.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "util/thread_pool.h"

namespace savg {
namespace {

std::vector<SvgicInstance> MakeInstances(int count) {
  std::vector<SvgicInstance> instances;
  for (int i = 0; i < count; ++i) {
    DatasetParams params;
    params.kind = i % 2 == 0 ? DatasetKind::kTimik : DatasetKind::kYelp;
    params.num_users = 8;
    params.num_items = 12;
    params.num_slots = 3;
    params.seed = 100 + 31 * i;
    auto inst = GenerateDataset(params);
    EXPECT_TRUE(inst.ok()) << inst.status();
    instances.push_back(std::move(inst).value());
  }
  return instances;
}

std::vector<const SvgicInstance*> Pointers(
    const std::vector<SvgicInstance>& instances) {
  std::vector<const SvgicInstance*> ptrs;
  for (const SvgicInstance& inst : instances) ptrs.push_back(&inst);
  return ptrs;
}

Result<BatchReport> RunWithWorkers(
    const std::vector<const SvgicInstance*>& instances, int workers,
    int repeats) {
  BatchOptions options;
  options.num_workers = workers;
  options.repeats = repeats;
  options.base_seed = 42;
  options.solver.avg_repeats = 2;
  BatchRunner runner(options);
  return runner.Run(instances,
                    std::vector<std::string>{"AVG", "AVG-D", "GRF", "IR"});
}

std::string ConfigFingerprint(const Configuration& config) {
  std::string out;
  for (UserId u = 0; u < config.num_users(); ++u) {
    for (SlotId s = 0; s < config.num_slots(); ++s) {
      out += std::to_string(config.At(u, s));
      out += ',';
    }
  }
  return out;
}

TEST(BatchRunnerTest, ResultsAreIdenticalForOneAndEightWorkers) {
  const auto instances = MakeInstances(3);
  auto serial = RunWithWorkers(Pointers(instances), 1, 2);
  auto parallel = RunWithWorkers(Pointers(instances), 8, 2);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_TRUE(serial->FirstError().ok()) << serial->FirstError();
  ASSERT_TRUE(parallel->FirstError().ok()) << parallel->FirstError();
  ASSERT_EQ(serial->tasks.size(), parallel->tasks.size());
  for (size_t t = 0; t < serial->tasks.size(); ++t) {
    const SolverRun& a = serial->tasks[t].run;
    const SolverRun& b = parallel->tasks[t].run;
    EXPECT_EQ(a.solver, b.solver);
    // Bit-identical objective and identical configurations: seeds derive
    // from task indices, never from scheduling.
    EXPECT_EQ(a.scaled_total, b.scaled_total) << a.solver << " task " << t;
    EXPECT_EQ(ConfigFingerprint(a.config), ConfigFingerprint(b.config))
        << a.solver << " task " << t;
  }
}

TEST(BatchRunnerTest, RepeatsDifferButAreReproducible) {
  const auto instances = MakeInstances(1);
  auto first = RunWithWorkers(Pointers(instances), 4, 3);
  auto second = RunWithWorkers(Pointers(instances), 2, 3);
  ASSERT_TRUE(first.ok() && second.ok());
  // Same (instance, solver, repeat) cell reproduces across runs...
  for (size_t t = 0; t < first->tasks.size(); ++t) {
    EXPECT_EQ(first->tasks[t].run.scaled_total,
              second->tasks[t].run.scaled_total);
  }
  // ...while randomized repeats draw distinct seeds.
  EXPECT_NE(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(42, 0, "AVG", 1));
  EXPECT_NE(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(42, 1, "AVG", 0));
  EXPECT_NE(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(43, 0, "AVG", 0));
  // Case differences must not change a solver's seed stream.
  EXPECT_EQ(BatchTaskSeed(42, 0, "AVG", 0), BatchTaskSeed(42, 0, "avg", 0));
}

TEST(BatchRunnerTest, LpRelaxationSolvedExactlyOncePerInstance) {
  const auto instances = MakeInstances(2);
  const int repeats = 3;
  BatchOptions options;
  options.num_workers = 4;
  options.repeats = repeats;
  options.solver.avg_repeats = 3;
  BatchRunner runner(options);
  // Three relaxation consumers x 2 instances x 3 repeats.
  auto report = runner.Run(
      Pointers(instances), std::vector<std::string>{"AVG", "AVG-D", "AVG+LS"});
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->FirstError().ok()) << report->FirstError();
  EXPECT_EQ(report->lp_cache_misses, 2);  // one solve per instance
  EXPECT_EQ(report->lp_cache_hits, 2 * 3 * repeats - 2);
  for (const BatchTaskResult& task : report->tasks) {
    EXPECT_TRUE(task.run.used_shared_relaxation) << task.run.solver;
    EXPECT_GT(task.run.scaled_total, 0.0);
  }
}

TEST(BatchRunnerTest, WarmStartedLambdaSweepCutsSimplexIterations) {
  // The lambda-sweep pattern of bench_fig4_lambda: the same instances
  // re-solved at successive lambdas share the compact LP's constraint
  // matrix, so handing the previous point's bases to the next point's
  // relaxation cache must (a) reproduce the cold-start LP optima and
  // (b) cut the total pivot count by at least 30% (acceptance criterion).
  const double kLambdas[] = {0.33, 0.5, 0.67};
  auto make_instances = [&](double lambda) {
    std::vector<SvgicInstance> instances;
    for (int i = 0; i < 2; ++i) {
      DatasetParams params;
      params.kind = DatasetKind::kTimik;
      params.num_users = 10;
      params.num_items = 14;
      params.num_slots = 3;
      params.lambda = lambda;
      params.seed = 500 + 17 * i;
      auto inst = GenerateDataset(params);
      EXPECT_TRUE(inst.ok()) << inst.status();
      instances.push_back(std::move(inst).value());
    }
    return instances;
  };

  auto run_sweep = [&](bool warm, std::vector<std::vector<double>>* objs) {
    int64_t total_iterations = 0;
    int64_t warm_started = 0;
    std::vector<LpBasis> bases;
    for (double lambda : kLambdas) {
      const auto instances = make_instances(lambda);
      BatchOptions options;
      options.num_workers = 2;
      if (warm && !bases.empty()) options.relaxation_warm_starts = &bases;
      BatchRunner runner(options);
      auto report = runner.Run(Pointers(instances),
                               std::vector<std::string>{"AVG", "AVG-D"});
      EXPECT_TRUE(report.ok()) << report.status();
      if (!report.ok()) return std::pair<int64_t, int64_t>{0, 0};
      EXPECT_TRUE(report->FirstError().ok()) << report->FirstError();
      total_iterations += report->lp_simplex_iterations;
      warm_started += report->lp_warm_started_solves;
      bases = std::move(report->relaxation_bases);
      objs->push_back(report->relaxation_objectives);
    }
    return std::pair<int64_t, int64_t>{total_iterations, warm_started};
  };

  std::vector<std::vector<double>> cold_objs, warm_objs;
  const auto [cold_iters, cold_warm_count] = run_sweep(false, &cold_objs);
  const auto [warm_iters, warm_warm_count] = run_sweep(true, &warm_objs);

  // Every solve after the first sweep point reused a basis...
  EXPECT_EQ(cold_warm_count, 0);
  EXPECT_EQ(warm_warm_count, 2 * (std::size(kLambdas) - 1));
  // ...reproducing the cold-start LP optima...
  ASSERT_EQ(cold_objs.size(), warm_objs.size());
  for (size_t p = 0; p < cold_objs.size(); ++p) {
    ASSERT_EQ(cold_objs[p].size(), warm_objs[p].size());
    for (size_t i = 0; i < cold_objs[p].size(); ++i) {
      EXPECT_NEAR(cold_objs[p][i], warm_objs[p][i], 1e-6)
          << "point " << p << " instance " << i;
    }
  }
  // ...with >= 30% fewer total simplex iterations.
  ASSERT_GT(cold_iters, 0);
  EXPECT_LE(warm_iters, (cold_iters * 7) / 10)
      << "warm " << warm_iters << " vs cold " << cold_iters;
}

TEST(BatchRunnerTest, SolversWithoutRelaxationSkipTheCache) {
  const auto instances = MakeInstances(1);
  BatchOptions options;
  options.num_workers = 2;
  BatchRunner runner(options);
  auto report = runner.Run(Pointers(instances),
                           std::vector<std::string>{"PER", "FMG", "SDP"});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->lp_cache_misses, 0);
  EXPECT_EQ(report->lp_cache_hits, 0);
}

TEST(BatchRunnerTest, UnknownSolverNameFailsUpFront) {
  const auto instances = MakeInstances(1);
  BatchRunner runner;
  auto report = runner.Run(Pointers(instances),
                           std::vector<std::string>{"AVG", "nope"});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(BatchRunnerTest, EmptyBatchIsInvalid) {
  BatchRunner runner;
  auto no_instances =
      runner.Run({}, std::vector<std::string>{"AVG"});
  EXPECT_EQ(no_instances.status().code(), StatusCode::kInvalidArgument);
  const auto instances = MakeInstances(1);
  auto no_solvers =
      runner.Run(Pointers(instances), std::vector<std::string>{});
  EXPECT_EQ(no_solvers.status().code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, RunsAllTasksAndWaits) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after a Wait().
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

}  // namespace
}  // namespace savg
