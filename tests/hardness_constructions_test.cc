// Executable versions of the paper's theoretical constructions:
//  * Theorem 1's gap instances I_G (OPT / OPT_G = n) and I_P
//    (OPT / OPT_P = O(n)),
//  * Lemma 3's instance where independent rounding achieves only O(1/m) of
//    the optimum in expectation.

#include <gtest/gtest.h>

#include "baselines/fmg.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "graph/generators.h"

namespace savg {
namespace {

/// Theorem 1, instance I_G: each user u_i prefers exactly the k items
/// C_i = {c_i, c_{n+i}, ..., c_{(k-1)n+i}}; no social edges.
SvgicInstance MakeTheorem1InstanceG(int n, int k) {
  SvgicInstance inst(EmptyGraph(n), n * k, k, 0.5);
  for (UserId u = 0; u < n; ++u) {
    for (int j = 0; j < k; ++j) inst.set_p(u, j * n + u, 1.0);
  }
  inst.FinalizePairs();
  return inst;
}

/// Theorem 1, instance I_P: complete graph, tau == 1 everywhere, user u_i
/// prefers C_i by epsilon over everything else.
SvgicInstance MakeTheorem1InstanceP(int n, int k, double epsilon) {
  SvgicInstance inst(CompleteGraph(n), n * k, k, 0.5);
  for (UserId u = 0; u < n; ++u) {
    for (ItemId c = 0; c < n * k; ++c) inst.set_p(u, c, 1.0 - epsilon);
    for (int j = 0; j < k; ++j) inst.set_p(u, j * n + u, 1.0);
  }
  for (const Edge& e : inst.graph().edges()) {
    for (ItemId c = 0; c < n * k; ++c) inst.set_tau(e.id, c, 1.0);
  }
  inst.FinalizePairs();
  return inst;
}

TEST(HardnessConstructionsTest, InstanceGGapIsN) {
  const int n = 6, k = 3;
  SvgicInstance inst = MakeTheorem1InstanceG(n, k);
  ASSERT_TRUE(inst.Validate().ok());
  // Optimal (personalized is optimal here): every user gets her k items.
  auto per = RunPersonalizedTopK(inst);
  ASSERT_TRUE(per.ok());
  const double opt = Evaluate(inst, *per).ScaledTotal();
  EXPECT_NEAR(opt, n * k, 1e-6);
  // Group approach: everyone sees the same k items; each item pleases
  // exactly one user => total k.
  FmgOptions fopt;
  fopt.fairness_weight = 0.0;
  auto group = RunFmg(inst, fopt);
  ASSERT_TRUE(group.ok());
  const double group_value = Evaluate(inst, *group).ScaledTotal();
  EXPECT_NEAR(group_value, k, 1e-6);
  EXPECT_NEAR(opt / group_value, n, 1e-6);
}

TEST(HardnessConstructionsTest, InstancePGapGrowsWithN) {
  const int n = 6, k = 2;
  const double eps = 1e-3;
  SvgicInstance inst = MakeTheorem1InstanceP(n, k, eps);
  ASSERT_TRUE(inst.Validate().ok());
  // Personalized: each user her own k items, no co-display.
  auto per = RunPersonalizedTopK(inst);
  ASSERT_TRUE(per.ok());
  const double per_value = Evaluate(inst, *per).ScaledTotal();
  EXPECT_NEAR(per_value, n * k, 1e-2);
  // Co-displaying one common bundle: preference ~ nk(1-eps) plus social
  // k * n(n-1) (pair weights are tau both ways = 2, times n(n-1)/2 pairs).
  FmgOptions fopt;
  fopt.fairness_weight = 0.0;
  auto group = RunFmg(inst, fopt);
  ASSERT_TRUE(group.ok());
  const double group_value = Evaluate(inst, *group).ScaledTotal();
  EXPECT_GT(group_value, per_value * (n - 1) / 2.0);
  // AVG must find (nearly) the group solution despite the epsilon bait.
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  AvgOptions aopt;
  aopt.seed = 1;
  auto avg = RunAvgBest(inst, *frac, 5, aopt);
  ASSERT_TRUE(avg.ok());
  EXPECT_GE(Evaluate(inst, avg->config).ScaledTotal(), 0.8 * group_value);
}

TEST(HardnessConstructionsTest, Lemma3IndependentRoundingLosesFactorM) {
  // Uniform-tau instance: LP puts x = k/m everywhere; independent rounding
  // co-displays a pair at a slot with probability ~1/m.
  const int n = 5, m = 15, k = 2;
  SvgicInstance inst(CompleteGraph(n), m, k, 0.5);
  for (const Edge& e : inst.graph().edges()) {
    for (ItemId c = 0; c < m; ++c) inst.set_tau(e.id, c, 0.5);
  }
  inst.FinalizePairs();
  // The lemma's "trivial optimal LP solution": x_u^c = k/m uniformly (the
  // simplex would return some vertex among the many ties instead).
  FractionalSolution frac_v;
  frac_v.num_users = n;
  frac_v.num_items = m;
  frac_v.num_slots = k;
  frac_v.x.assign(static_cast<size_t>(n) * m,
                  static_cast<double>(k) / m);
  frac_v.lp_objective = k * 10.0;
  frac_v.BuildSupporters();
  Result<FractionalSolution> frac(std::move(frac_v));

  // Optimal co-display: everyone together on k distinct items:
  // scaled social = k * (#pairs) * w = k * 10 * 1.
  const double opt_social = k * 10.0;
  double ind_social = 0.0, avg_social = 0.0;
  const int runs = 30;
  for (int i = 0; i < runs; ++i) {
    IndependentRoundingOptions iopt;
    iopt.seed = 100 + i;
    iopt.repair_duplicates = true;
    auto ind = RunIndependentRounding(inst, *frac, iopt);
    ASSERT_TRUE(ind.ok());
    ind_social += Evaluate(inst, ind->config).social_direct;
    AvgOptions aopt;
    aopt.seed = 100 + i;
    auto avg = RunAvg(inst, *frac, aopt);
    ASSERT_TRUE(avg.ok());
    avg_social += Evaluate(inst, avg->config).social_direct;
  }
  ind_social /= runs;
  avg_social /= runs;
  // Independent rounding: expected ~ opt/m (with repair noise); CSF: ~opt.
  EXPECT_LT(ind_social, 0.35 * opt_social);
  EXPECT_GT(avg_social, 0.9 * opt_social);
}

TEST(HardnessConstructionsTest, LpIsTightOnInstanceG) {
  SvgicInstance inst = MakeTheorem1InstanceG(5, 2);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  EXPECT_NEAR(frac->lp_objective, 10.0, 1e-6);  // integral optimum = LP
}

}  // namespace
}  // namespace savg
