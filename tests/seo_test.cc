#include <gtest/gtest.h>

#include "core/seo.h"
#include "graph/generators.h"
#include "util/random.h"

namespace savg {
namespace {

/// A small SEO scenario: 9 attendees in three friend-triangles, 5 events.
SeoProblem MakeSeoProblem(uint64_t seed) {
  SeoProblem problem;
  problem.network = SocialGraph(9);
  for (int base : {0, 3, 6}) {
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        Status st = problem.network.AddUndirectedEdge(base + a, base + b);
        (void)st;
      }
    }
  }
  problem.num_events = 5;
  problem.num_time_slots = 2;
  problem.lambda = 0.5;
  problem.capacity = {4, 4, 4, 4, 4};
  problem.interest.assign(9 * 5, 0.0f);
  Rng rng(seed);
  for (int u = 0; u < 9; ++u) {
    for (int e = 0; e < 5; ++e) {
      problem.interest[u * 5 + e] = static_cast<float>(rng.Uniform(0.1, 1.0));
    }
  }
  problem.joint_benefit.resize(problem.network.num_edges());
  for (const Edge& e : problem.network.edges()) {
    for (int ev = 0; ev < 5; ++ev) {
      problem.joint_benefit[e.id].push_back(
          {ev, static_cast<float>(rng.Uniform(0.1, 0.5))});
    }
  }
  return problem;
}

TEST(SeoTest, ConversionProducesValidInstance) {
  SeoProblem problem = MakeSeoProblem(1);
  auto inst = SeoToSvgic(problem);
  ASSERT_TRUE(inst.ok()) << inst.status();
  EXPECT_EQ(inst->num_users(), 9);
  EXPECT_EQ(inst->num_items(), 5);
  EXPECT_EQ(inst->num_slots(), 2);
  EXPECT_EQ(inst->pairs().size(), 9u);  // three triangles
}

TEST(SeoTest, AssignmentRespectsCapacities) {
  SeoProblem problem = MakeSeoProblem(2);
  auto result = SolveSeo(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->capacity_feasible);
  // Count attendance per (event, time slot).
  for (int t = 0; t < problem.num_time_slots; ++t) {
    std::vector<int> count(problem.num_events, 0);
    for (int u = 0; u < 9; ++u) {
      const int e = result->schedule[u][t];
      ASSERT_GE(e, 0);
      ASSERT_LT(e, problem.num_events);
      ++count[e];
    }
    for (int e = 0; e < problem.num_events; ++e) {
      EXPECT_LE(count[e], problem.capacity[e]) << "event " << e;
    }
  }
}

TEST(SeoTest, NoUserAttendsSameEventTwice) {
  SeoProblem problem = MakeSeoProblem(3);
  auto result = SolveSeo(problem);
  ASSERT_TRUE(result.ok());
  for (int u = 0; u < 9; ++u) {
    EXPECT_NE(result->schedule[u][0], result->schedule[u][1]);
  }
}

TEST(SeoTest, TightCapacitiesStillFeasible) {
  SeoProblem problem = MakeSeoProblem(4);
  problem.capacity = {2, 2, 2, 2, 2};  // 9 users, 2 per event, 5 events
  auto result = SolveSeo(problem);
  ASSERT_TRUE(result.ok()) << result.status();
  // 5 events x cap 2 = 10 >= 9 users per slot: feasible must be found.
  EXPECT_TRUE(result->capacity_feasible);
}

TEST(SeoTest, FriendsTendToAttendTogether) {
  SeoProblem problem = MakeSeoProblem(5);
  auto result = SolveSeo(problem);
  ASSERT_TRUE(result.ok());
  // Count (friend pair, slot) co-attendances; with triangles and joint
  // benefits the solver should produce a decent number.
  int together = 0;
  for (const Edge& e : problem.network.edges()) {
    if (e.u > e.v) continue;
    for (int t = 0; t < problem.num_time_slots; ++t) {
      if (result->schedule[e.u][t] == result->schedule[e.v][t]) ++together;
    }
  }
  EXPECT_GT(together, 3);
}

TEST(SeoTest, RejectsTooFewEvents) {
  SeoProblem problem = MakeSeoProblem(6);
  problem.num_time_slots = 6;  // > num_events
  EXPECT_FALSE(SolveSeo(problem).ok());
}

}  // namespace
}  // namespace savg
