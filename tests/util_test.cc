#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace savg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Infeasible("no solution");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "Infeasible: no solution");
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(StatusTest, ResultHoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.UniformInt(uint64_t{5});
    ASSERT_LT(v, 5u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = rng.Zipf(1000, 1.0);
    ASSERT_LT(r, 1000u);
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 8000; ++i) {
    size_t pick = rng.Discrete(w);
    ASSERT_NE(pick, 0u);
    ASSERT_LT(pick, 3u);
    if (pick == 1) ++c1;
    if (pick == 2) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c2) / c1, 3.0, 0.5);
}

TEST(RngTest, DiscreteAllZeroReturnsSize) {
  Rng rng(1);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(w), 2u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto s = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  for (size_t i = 1; i < s.size(); ++i) EXPECT_NE(s[i - 1], s[i]);
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_NEAR(StdDev(xs), std::sqrt(2.5), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(Min({}), 0.0);
  EXPECT_EQ(Max({}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
}

TEST(StatsTest, PearsonPerfectLinear) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> yneg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, yneg), -1.0, 1e-12);
}

TEST(StatsTest, SpearmanMonotoneNonlinear) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, AverageRanksHandlesTies) {
  std::vector<double> xs = {5, 1, 5, 3};
  auto r = AverageRanks(xs);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 2.0);
  EXPECT_DOUBLE_EQ(r[0], 3.5);
  EXPECT_DOUBLE_EQ(r[2], 3.5);
}

TEST(StatsTest, EmpiricalCdf) {
  auto cdf = EmpiricalCdf({3, 1, 2, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(StatsTest, CdfAt) {
  std::vector<double> xs = {0.1, 0.2, 0.3, 0.9};
  EXPECT_DOUBLE_EQ(CdfAt(xs, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(CdfAt(xs, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(CdfAt(xs, 0.0), 0.0);
}

TEST(StatsTest, RunningStatMatchesBatch) {
  std::vector<double> xs = {4, 8, 15, 16, 23, 42};
  RunningStat rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 4.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

TEST(TableTest, RendersAlignedTable) {
  Table t({"algo", "utility"});
  t.NewRow().Add("AVG").Add(9.75, 2);
  t.NewRow().Add("AVG-D").Add(9.85, 2);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("AVG-D"), std::string::npos);
  EXPECT_NE(s.find("9.85"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.NewRow().Add(int64_t{1}).Add(int64_t{2});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatPercent(0.312, 1), "31.2%");
}

}  // namespace
}  // namespace savg
