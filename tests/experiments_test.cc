#include <gtest/gtest.h>

#include "experiments/runner.h"

namespace savg {
namespace {

TEST(RunnerTest, AlgoNamesAreStable) {
  EXPECT_STREQ(AlgoName(Algo::kAvg), "AVG");
  EXPECT_STREQ(AlgoName(Algo::kAvgD), "AVG-D");
  EXPECT_STREQ(AlgoName(Algo::kIp), "IP");
  EXPECT_EQ(AllAlgos(false).size(), 6u);
  EXPECT_EQ(AllAlgos(true).size(), 7u);
}

TEST(RunnerTest, RunAlgorithmAllKindsOnSmallInstance) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = 6;
  params.num_items = 8;
  params.num_slots = 2;
  params.seed = 3;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  RunnerConfig config;
  config.ip.mip.max_nodes = 2000;
  for (Algo algo : AllAlgos(true)) {
    auto run = RunAlgorithm(*inst, algo, config);
    ASSERT_TRUE(run.ok()) << AlgoName(algo) << ": " << run.status();
    EXPECT_TRUE(run->config.CheckValid().ok()) << AlgoName(algo);
    EXPECT_GT(run->scaled_total, 0.0) << AlgoName(algo);
  }
}

TEST(RunnerTest, ComparisonAggregatesAndOrders) {
  DatasetParams params;
  params.kind = DatasetKind::kYelp;
  params.num_users = 14;
  params.num_items = 40;
  params.num_slots = 4;
  params.seed = 11;
  RunnerConfig config;
  auto rows = RunComparison(params, /*samples=*/3, AllAlgos(false), config);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 6u);
  double avg_value = 0.0, best_baseline = 0.0;
  for (const AggregateRow& row : *rows) {
    EXPECT_GT(row.mean_scaled_total, 0.0) << AlgoName(row.algo);
    EXPECT_GE(row.mean_seconds, 0.0);
    EXPECT_FALSE(row.regret_samples.empty());
    if (row.algo == Algo::kAvg || row.algo == Algo::kAvgD) {
      avg_value = std::max(avg_value, row.mean_scaled_total);
    } else {
      best_baseline = std::max(best_baseline, row.mean_scaled_total);
    }
  }
  // The paper's headline: AVG/AVG-D beat every baseline.
  EXPECT_GT(avg_value, best_baseline);
}

TEST(RunnerTest, SharedFractionalSolutionReused) {
  DatasetParams params;
  params.num_users = 8;
  params.num_items = 10;
  params.num_slots = 3;
  params.seed = 21;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  auto frac = SolveRelaxation(*inst);
  ASSERT_TRUE(frac.ok());
  RunnerConfig config;
  auto with_shared = RunAlgorithm(*inst, Algo::kAvgD, config, &*frac);
  auto without = RunAlgorithm(*inst, Algo::kAvgD, config);
  ASSERT_TRUE(with_shared.ok() && without.ok());
  // AVG-D is deterministic: same configuration either way.
  EXPECT_NEAR(with_shared->scaled_total, without->scaled_total, 1e-9);
}

}  // namespace
}  // namespace savg
