#include "solvers/solver_registry.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "experiments/runner.h"
#include "solvers/solver_options.h"

namespace savg {
namespace {

TEST(SolverRegistryTest, AllSeedAlgorithmsResolvableByName) {
  const std::vector<std::string> names = {
      "AVG", "AVG-D", "AVG+LS", "AVG-ST", "PER",  "FMG",
      "SDP", "GRF",   "IP",     "BRUTE",  "IR"};
  for (const std::string& name : names) {
    auto solver = SolverRegistry::Global().Find(name);
    ASSERT_TRUE(solver.ok()) << name << ": " << solver.status();
    EXPECT_EQ((*solver)->Name(), name);
  }
}

TEST(SolverRegistryTest, LookupIsCaseInsensitiveAndAliased) {
  auto& registry = SolverRegistry::Global();
  for (const std::string& name :
       {"avg", "Avg", "AVG", "avg-d", "avg+ls", "avg-ls", "ip-exact", "bf",
        "brute-force", "independent-rounding"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    EXPECT_TRUE(registry.Find(name).ok()) << name;
  }
  // Aliases resolve to the same singleton as the canonical name.
  auto canonical = registry.Find("AVG+LS");
  auto alias = registry.Find("avg-ls");
  ASSERT_TRUE(canonical.ok() && alias.ok());
  EXPECT_EQ(*canonical, *alias);
}

TEST(SolverRegistryTest, UnknownNameIsNotFoundError) {
  auto solver = SolverRegistry::Global().Find("no-such-solver");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
  // The message lists the known names to make typos debuggable.
  EXPECT_NE(solver.status().message().find("AVG-D"), std::string::npos);
}

TEST(SolverRegistryTest, DuplicateRegistrationFails) {
  SolverRegistry registry;  // fresh, empty
  auto factory = []() -> std::unique_ptr<Solver> {
    auto created = SolverRegistry::Global().Create("PER");
    return std::move(created).value();
  };
  EXPECT_TRUE(registry.Register("X", factory, {"x-alias"}).ok());
  Status dup = registry.Register("x", factory);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  Status dup_alias = registry.Register("Y", factory, {"X-ALIAS"});
  EXPECT_EQ(dup_alias.code(), StatusCode::kAlreadyExists);
}

TEST(SolverRegistryTest, EnumNamesStayInSyncWithRegistry) {
  for (Algo algo : AllAlgos(/*include_ip=*/true)) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(AlgoName(algo)))
        << AlgoName(algo);
  }
}

TEST(SolverRegistryTest, NamesListsCanonicalNames) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  EXPECT_GE(names.size(), 10u);
  // Aliases must not show up.
  for (const std::string& name : names) {
    EXPECT_NE(name, "avg-ls");
    EXPECT_NE(name, "bf");
  }
}

TEST(SolverRegistryTest, SolveThroughRegistryMatchesEnumShim) {
  DatasetParams params;
  params.num_users = 6;
  params.num_items = 8;
  params.num_slots = 2;
  params.seed = 5;
  auto inst = GenerateDataset(params);
  ASSERT_TRUE(inst.ok());
  SolverOptions options;
  for (const std::string& name : {"AVG-D", "PER", "FMG"}) {
    auto solver = SolverRegistry::Global().Find(name);
    ASSERT_TRUE(solver.ok());
    SolverContext context;
    context.options = &options;
    auto run = (*solver)->Solve(*inst, context);
    ASSERT_TRUE(run.ok()) << name << ": " << run.status();
    EXPECT_EQ(run->solver, name);
    EXPECT_TRUE(run->config.CheckValid().ok()) << name;
    EXPECT_GT(run->scaled_total, 0.0) << name;
  }
}

}  // namespace
}  // namespace savg
