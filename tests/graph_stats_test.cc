#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "graph/generators.h"
#include "graph/community.h"
#include "graph/stats.h"

namespace savg {
namespace {

TEST(GraphStatsTest, CompleteGraphDegreeAndClustering) {
  SocialGraph g = CompleteGraph(6);
  const DegreeStats d = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(d.mean, 5.0);
  EXPECT_DOUBLE_EQ(d.max, 5.0);
  EXPECT_DOUBLE_EQ(d.stddev, 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
  EXPECT_EQ(LargestComponentSize(g), 6);
}

TEST(GraphStatsTest, PathGraphHasNoTriangles) {
  SocialGraph g(5);
  for (int i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(g.AddUndirectedEdge(i, i + 1).ok());
  }
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
  Rng rng(1);
  const double apl = ApproxAveragePathLength(g, 200, &rng);
  EXPECT_GT(apl, 1.0);
  EXPECT_LT(apl, 4.0 + 1e-9);
}

TEST(GraphStatsTest, DisconnectedComponents) {
  SocialGraph g(6);
  ASSERT_TRUE(g.AddUndirectedEdge(0, 1).ok());
  ASSERT_TRUE(g.AddUndirectedEdge(1, 2).ok());
  ASSERT_TRUE(g.AddUndirectedEdge(3, 4).ok());
  EXPECT_EQ(LargestComponentSize(g), 3);
}

TEST(GraphStatsTest, BarabasiAlbertHeavierTailThanErdosRenyi) {
  Rng rng(7);
  SocialGraph ba = BarabasiAlbert(300, 3, &rng);
  const double p =
      ba.UndirectedDensity();  // match ER density to BA's for fairness
  SocialGraph er = ErdosRenyi(300, p, &rng);
  const DegreeStats ba_stats = ComputeDegreeStats(ba);
  const DegreeStats er_stats = ComputeDegreeStats(er);
  EXPECT_GT(ba_stats.cv, er_stats.cv);
  EXPECT_GT(ba_stats.max, er_stats.max);
}

TEST(GraphStatsTest, WattsStrogatzMoreClusteredThanErdosRenyi) {
  Rng rng(11);
  SocialGraph ws = WattsStrogatz(200, 4, 0.05, &rng);
  SocialGraph er = ErdosRenyi(200, ws.UndirectedDensity(), &rng);
  EXPECT_GT(GlobalClusteringCoefficient(ws),
            2.0 * GlobalClusteringCoefficient(er));
}

TEST(GraphStatsTest, EmulatorShapesMatchDesignClaims) {
  // DESIGN.md: Timik-like dense with weak community structure vs Yelp-like
  // with strong communities; Epinions-like sparse. Community strength is
  // measured as the modularity of the best greedy partition (raw clustering
  // coefficients are not discriminative on dense small samples).
  double timik_density = 0, epinions_density = 0;
  double yelp_mod = 0, timik_mod = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DatasetParams params;
    params.num_users = 40;
    params.num_items = 50;
    params.num_slots = 4;
    params.seed = seed;
    params.kind = DatasetKind::kTimik;
    auto timik = GenerateDataset(params);
    params.kind = DatasetKind::kEpinions;
    auto epinions = GenerateDataset(params);
    params.kind = DatasetKind::kYelp;
    auto yelp = GenerateDataset(params);
    ASSERT_TRUE(timik.ok() && epinions.ok() && yelp.ok());
    timik_density += timik->graph().UndirectedDensity();
    epinions_density += epinions->graph().UndirectedDensity();
    timik_mod += Modularity(timik->graph(),
                            GreedyModularity(timik->graph()));
    yelp_mod +=
        Modularity(yelp->graph(), GreedyModularity(yelp->graph()));
  }
  EXPECT_GT(timik_density, 1.5 * epinions_density);
  EXPECT_GT(yelp_mod, timik_mod);
}

}  // namespace
}  // namespace savg
