#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/problem.h"
#include "graph/generators.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(ProblemTest, ValidateCatchesBadDimensions) {
  SvgicInstance inst(SocialGraph(2), /*num_items=*/2, /*num_slots=*/3, 0.5);
  inst.FinalizePairs();
  // k > m makes no-duplication unsatisfiable.
  EXPECT_EQ(inst.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ProblemTest, ValidateCatchesBadLambda) {
  SvgicInstance inst(SocialGraph(2), 3, 2, 1.5);
  inst.FinalizePairs();
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(ProblemTest, ValidateCatchesNegativePreference) {
  SvgicInstance inst(SocialGraph(2), 3, 2, 0.5);
  inst.set_p(0, 0, -0.5);
  inst.FinalizePairs();
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(ProblemTest, ValidateRequiresFinalize) {
  SocialGraph g(2);
  ASSERT_TRUE(g.AddUndirectedEdge(0, 1).ok());
  SvgicInstance inst(g, 3, 2, 0.5);
  inst.set_tau(0, 1, 0.3);
  EXPECT_FALSE(inst.Validate().ok());
  inst.FinalizePairs();
  EXPECT_TRUE(inst.Validate().ok());
}

TEST(ProblemTest, PairsMergeBothDirections) {
  SocialGraph g(2);
  const EdgeId uv = *g.AddEdge(0, 1);
  const EdgeId vu = *g.AddEdge(1, 0);
  SvgicInstance inst(g, 4, 2, 0.5);
  inst.set_tau(uv, 2, 0.3);
  inst.set_tau(vu, 2, 0.2);
  inst.set_tau(uv, 0, 0.1);
  inst.FinalizePairs();
  ASSERT_EQ(inst.pairs().size(), 1u);
  const FriendPair& pair = inst.pairs()[0];
  EXPECT_EQ(pair.u, 0);
  EXPECT_EQ(pair.v, 1);
  EXPECT_NEAR(pair.WeightOf(2), 0.5, 1e-6);
  EXPECT_NEAR(pair.WeightOf(0), 0.1, 1e-6);
  EXPECT_NEAR(pair.WeightOf(3), 0.0, 1e-6);
}

TEST(ProblemTest, OneDirectionalEdgeStillFormsPair) {
  SocialGraph g(2);
  const EdgeId uv = *g.AddEdge(0, 1);  // no reverse edge
  SvgicInstance inst(g, 3, 1, 0.5);
  inst.set_tau(uv, 1, 0.7);
  inst.FinalizePairs();
  ASSERT_EQ(inst.pairs().size(), 1u);
  EXPECT_EQ(inst.pairs()[0].vu, -1);
  EXPECT_NEAR(inst.pairs()[0].WeightOf(1), 0.7, 1e-6);
}

TEST(ProblemTest, DuplicateTauEntriesAreSummed) {
  SocialGraph g(2);
  const EdgeId uv = *g.AddEdge(0, 1);
  SvgicInstance inst(g, 3, 1, 0.5);
  inst.set_tau(uv, 1, 0.2);
  inst.set_tau(uv, 1, 0.3);
  inst.FinalizePairs();
  EXPECT_NEAR(inst.TauOf(uv, 1), 0.5, 1e-6);
}

TEST(ProblemTest, ScaledPreferenceMatchesFormula) {
  SvgicInstance inst = MakePaperExample(0.25);
  // p'(u,c) = (1-lambda)/lambda p = 3 p.
  EXPECT_NEAR(inst.ScaledP(kAlice, 0), 3.0 * 0.8, 1e-5);
}

TEST(ProblemTest, PairsOfUserIndexIsConsistent) {
  SvgicInstance inst = MakePaperExample(0.5);
  // Alice participates in pairs with B, C, D.
  EXPECT_EQ(inst.PairsOfUser(kAlice).size(), 3u);
  EXPECT_EQ(inst.PairsOfUser(kBob).size(), 2u);
  EXPECT_EQ(inst.PairsOfUser(kDave).size(), 1u);
  for (int pi : inst.PairsOfUser(kCharlie)) {
    const FriendPair& pair = inst.pairs()[pi];
    EXPECT_TRUE(pair.u == kCharlie || pair.v == kCharlie);
  }
}

TEST(ConfigurationTest, SetEnforcesNoDuplication) {
  Configuration config(2, 3, 5);
  ASSERT_TRUE(config.Set(0, 0, 2).ok());
  EXPECT_EQ(config.Set(0, 1, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(config.Set(0, 1, 3).ok());
}

TEST(ConfigurationTest, SetRejectsOccupiedUnit) {
  Configuration config(1, 2, 3);
  ASSERT_TRUE(config.Set(0, 0, 1).ok());
  EXPECT_EQ(config.Set(0, 0, 2).code(), StatusCode::kAlreadyExists);
}

TEST(ConfigurationTest, UnsetRestoresEligibility) {
  Configuration config(1, 2, 3);
  ASSERT_TRUE(config.Set(0, 0, 1).ok());
  config.Unset(0, 0);
  EXPECT_EQ(config.At(0, 0), kNoItem);
  EXPECT_FALSE(config.Displays(0, 1));
  EXPECT_TRUE(config.Set(0, 1, 1).ok());
  EXPECT_EQ(config.NumUnassigned(), 1);
}

TEST(ConfigurationTest, CoDisplayQueries) {
  Configuration config(3, 2, 4);
  ASSERT_TRUE(config.Set(0, 0, 2).ok());
  ASSERT_TRUE(config.Set(1, 0, 2).ok());
  ASSERT_TRUE(config.Set(2, 1, 2).ok());
  EXPECT_TRUE(config.CoDisplayedAt(0, 1, 2, 0));
  EXPECT_TRUE(config.CoDisplayed(0, 1, 2));
  EXPECT_FALSE(config.CoDisplayed(0, 2, 2));
  EXPECT_TRUE(config.IndirectlyCoDisplayed(0, 2, 2));
  EXPECT_FALSE(config.IndirectlyCoDisplayed(0, 1, 2));
}

TEST(ConfigurationTest, GroupsAtSlot) {
  Configuration config(4, 1, 3);
  ASSERT_TRUE(config.Set(0, 0, 1).ok());
  ASSERT_TRUE(config.Set(1, 0, 1).ok());
  ASSERT_TRUE(config.Set(2, 0, 0).ok());
  // User 3 unassigned.
  auto groups = config.GroupsAtSlot(0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].item, 0);
  EXPECT_EQ(groups[0].members, (std::vector<UserId>{2}));
  EXPECT_EQ(groups[1].item, 1);
  EXPECT_EQ(groups[1].members, (std::vector<UserId>{0, 1}));
}

TEST(ConfigurationTest, CheckValidDetectsIncomplete) {
  Configuration config(1, 2, 3);
  ASSERT_TRUE(config.Set(0, 0, 1).ok());
  EXPECT_FALSE(config.CheckValid().ok());
  ASSERT_TRUE(config.Set(0, 1, 2).ok());
  EXPECT_TRUE(config.CheckValid().ok());
}

}  // namespace
}  // namespace savg
