#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/avg.h"
#include "core/csf.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "graph/generators.h"
#include "paper_example.h"

namespace savg {
namespace {

FractionalSolution Solve(const SvgicInstance& inst) {
  auto frac = SolveRelaxation(inst);
  EXPECT_TRUE(frac.ok()) << frac.status();
  return std::move(frac).value();
}

TEST(SampleTreeTest, SamplesProportionally) {
  SampleTree tree(4);
  tree.Set(0, 0.0);
  tree.Set(1, 1.0);
  tree.Set(2, 3.0);
  tree.Set(3, 0.0);
  Rng rng(3);
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 12000; ++i) {
    const int s = tree.Sample(&rng);
    ASSERT_TRUE(s == 1 || s == 2);
    (s == 1 ? c1 : c2)++;
  }
  EXPECT_NEAR(static_cast<double>(c2) / c1, 3.0, 0.4);
}

TEST(SampleTreeTest, UpdatesChangeDistribution) {
  SampleTree tree(3);
  tree.Set(0, 5.0);
  tree.Set(1, 5.0);
  tree.Set(0, 0.0);  // remove bin 0
  Rng rng(5);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(tree.Sample(&rng), 1);
  EXPECT_NEAR(tree.total(), 5.0, 1e-12);
}

TEST(SampleTreeTest, EmptyTreeReturnsMinusOne) {
  SampleTree tree(3);
  Rng rng(1);
  EXPECT_EQ(tree.Sample(&rng), -1);
}

TEST(CsfStateTest, EligibilityRules) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  CsfState state(inst, frac);
  EXPECT_TRUE(state.Eligible(kAlice, 0, 0));
  ASSERT_TRUE(state.AssignUnit(kAlice, 0, 0).ok());
  EXPECT_FALSE(state.Eligible(kAlice, 0, 0));  // unit occupied
  EXPECT_FALSE(state.Eligible(kAlice, 0, 1));  // item displayed elsewhere
  EXPECT_TRUE(state.Eligible(kAlice, 1, 1));
}

TEST(CsfStateTest, ApplyCsfAssignsAllAboveThreshold) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  CsfState state(inst, frac);
  // alpha = 0 assigns every eligible supporter of the item at that slot.
  ItemId c = frac.active_items().front();
  std::vector<UserId> assigned;
  const int count = state.ApplyCsf(c, 0, 0.0, &assigned);
  EXPECT_EQ(count, static_cast<int>(assigned.size()));
  EXPECT_EQ(count, static_cast<int>(frac.SupportersOf(c).size()));
  for (UserId u : assigned) EXPECT_EQ(state.config().At(u, 0), c);
}

TEST(CsfStateTest, SizeCapLimitsGroup) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  // Find an item with >= 3 supporters.
  ItemId crowded = kNoItem;
  for (ItemId c : frac.active_items()) {
    if (frac.SupportersOf(c).size() >= 3) {
      crowded = c;
      break;
    }
  }
  ASSERT_NE(crowded, kNoItem);
  CsfState state(inst, frac, /*size_cap=*/2);
  EXPECT_EQ(state.ApplyCsf(crowded, 0, 0.0), 2);
  EXPECT_EQ(state.GroupSize(crowded, 0), 2);
  // Locked now.
  EXPECT_EQ(state.FreshMaxFactor(crowded, 0), 0.0);
  EXPECT_EQ(state.ApplyCsf(crowded, 0, 0.0), 0);
}

TEST(CsfStateTest, GreedyCompleteProducesValidConfig) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  CsfState state(inst, frac);
  state.GreedyComplete();
  EXPECT_TRUE(state.config().CheckValid().ok());
}

TEST(AvgTest, ProducesValidConfigurations) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    AvgOptions opt;
    opt.seed = seed;
    auto result = RunAvg(inst, frac, opt);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->config.CheckValid().ok());
  }
}

TEST(AvgTest, DeterministicGivenSeed) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  AvgOptions opt;
  opt.seed = 99;
  auto a = RunAvg(inst, frac, opt);
  auto b = RunAvg(inst, frac, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  for (UserId u = 0; u < 4; ++u) {
    for (SlotId s = 0; s < 3; ++s) {
      EXPECT_EQ(a->config.At(u, s), b->config.At(u, s));
    }
  }
}

TEST(AvgTest, OriginalSamplingAlsoValidButMoreIdle) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  int64_t idle_adv = 0, idle_orig = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    AvgOptions adv;
    adv.seed = seed;
    auto a = RunAvg(inst, frac, adv);
    ASSERT_TRUE(a.ok());
    idle_adv += a->idle_iterations;
    AvgOptions orig;
    orig.seed = seed;
    orig.advanced_sampling = false;
    auto o = RunAvg(inst, frac, orig);
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o->config.CheckValid().ok());
    idle_orig += o->idle_iterations;
  }
  // The advanced scheme discards non-contributing parameters in advance.
  EXPECT_LT(idle_adv, idle_orig);
}

TEST(AvgTest, RunAvgBestImprovesOnSingleRun) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac = Solve(inst);
  AvgOptions opt;
  opt.seed = 12345;
  auto single = RunAvg(inst, frac, opt);
  auto best = RunAvgBest(inst, frac, 15, opt);
  ASSERT_TRUE(single.ok() && best.ok());
  EXPECT_GE(Evaluate(inst, best->config).ScaledTotal(),
            Evaluate(inst, single->config).ScaledTotal() - 1e-9);
}

TEST(AvgTest, FourApproximationHoldsEmpiricallyOnRandomInstances) {
  // Property test of Theorem 4: the *expected* AVG value is >= OPT/4. We
  // check the empirical mean against the LP bound (which upper-bounds OPT),
  // an even stronger requirement, over a few random instances.
  for (uint64_t seed : {101u, 202u, 303u, 404u}) {
    DatasetParams params;
    params.kind = DatasetKind::kYelp;
    params.num_users = 6;
    params.num_items = 8;
    params.num_slots = 3;
    params.seed = seed;
    auto inst = GenerateDataset(params);
    ASSERT_TRUE(inst.ok());
    FractionalSolution frac = Solve(*inst);
    double mean = 0.0;
    const int runs = 30;
    for (int i = 0; i < runs; ++i) {
      AvgOptions opt;
      opt.seed = seed * 1000 + i;
      auto result = RunAvg(*inst, frac, opt);
      ASSERT_TRUE(result.ok());
      mean += Evaluate(*inst, result->config).ScaledTotal();
    }
    mean /= runs;
    EXPECT_GE(mean, frac.lp_objective / 4.0 - 1e-9)
        << "seed " << seed << ": mean " << mean << " vs LP "
        << frac.lp_objective;
  }
}

TEST(AvgTest, SizeCapNeverViolated) {
  for (uint64_t seed : {7u, 8u}) {
    DatasetParams params;
    params.kind = DatasetKind::kTimik;
    params.num_users = 12;
    params.num_items = 15;
    params.num_slots = 4;
    params.seed = seed;
    auto inst = GenerateDataset(params);
    ASSERT_TRUE(inst.ok());
    FractionalSolution frac = Solve(*inst);
    for (int cap : {1, 2, 3}) {
      AvgOptions opt;
      opt.seed = seed;
      opt.size_cap = cap;
      auto result = RunAvg(*inst, frac, opt);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(result->config.CheckValid().ok());
      EXPECT_EQ(SizeConstraintViolation(result->config, cap), 0)
          << "cap " << cap << " seed " << seed;
    }
  }
}

TEST(AvgTest, IndependentRoundingLosesSocialUtility) {
  // Lemma 3 setup: indifferent preferences, uniform tau. Independent
  // rounding collapses social utility; CSF keeps it.
  const int n = 6, m = 12, k = 2;
  SocialGraph g = CompleteGraph(n);
  SvgicInstance inst(g, m, k, 0.5);
  for (const Edge& e : g.edges()) {
    for (ItemId c = 0; c < m; ++c) inst.set_tau(e.id, c, 0.5);
  }
  inst.FinalizePairs();
  FractionalSolution frac = Solve(inst);
  double avg_mean = 0.0, ind_mean = 0.0;
  const int runs = 20;
  for (int i = 0; i < runs; ++i) {
    AvgOptions aopt;
    aopt.seed = 50 + i;
    auto avg = RunAvg(inst, frac, aopt);
    ASSERT_TRUE(avg.ok());
    avg_mean += Evaluate(inst, avg->config).ScaledTotal();
    IndependentRoundingOptions iopt;
    iopt.seed = 50 + i;
    auto ind = RunIndependentRounding(inst, frac, iopt);
    ASSERT_TRUE(ind.ok());
    EXPECT_TRUE(ind->config.CheckValid().ok());
    ind_mean += Evaluate(inst, ind->config).ScaledTotal();
  }
  // CSF should get close to full co-display; independent rounding only a
  // ~1/m fraction of it.
  EXPECT_GT(avg_mean, 2.0 * ind_mean);
}

TEST(AvgTest, RejectsUnpreparedFractionalSolution) {
  SvgicInstance inst = MakePaperExample(0.5);
  FractionalSolution frac;
  frac.num_users = 4;
  frac.num_items = 5;
  frac.num_slots = 3;
  frac.x.assign(20, 0.5);
  // BuildSupporters not called.
  EXPECT_FALSE(RunAvg(inst, frac).ok());
}

}  // namespace
}  // namespace savg
