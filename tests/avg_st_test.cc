#include <gtest/gtest.h>

#include "baselines/fmg.h"
#include "baselines/per.h"
#include "baselines/st_prepartition.h"
#include "core/avg_st.h"
#include "core/objective.h"
#include "datagen/datasets.h"
#include "paper_example.h"

namespace savg {
namespace {

SvgicInstance RandomInstance(int n, int m, int k, uint64_t seed) {
  DatasetParams params;
  params.kind = DatasetKind::kTimik;
  params.num_users = n;
  params.num_items = m;
  params.num_slots = k;
  params.seed = seed;
  auto inst = GenerateDataset(params);
  EXPECT_TRUE(inst.ok()) << inst.status();
  return std::move(inst).value();
}

TEST(AvgStTest, AlwaysFeasibleUnderTightCaps) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SvgicInstance inst = RandomInstance(15, 20, 4, seed);
    // One relaxation per instance, shared across caps.
    StOptions base;
    auto frac = SolveStRelaxation(inst, base);
    ASSERT_TRUE(frac.ok()) << frac.status();
    for (int cap : {2, 3, 5}) {
      AvgOptions avg;
      avg.seed = seed;
      avg.size_cap = cap;
      auto result = RunAvg(inst, *frac, avg);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_TRUE(result->config.CheckValid().ok());
      EXPECT_EQ(SizeConstraintViolation(result->config, cap), 0)
          << "cap " << cap << " seed " << seed;
    }
  }
}

TEST(AvgStTest, ExactStLpPathWorksOnSmallInstance) {
  SvgicInstance inst = MakePaperExample(0.5);
  StOptions opt;
  opt.size_cap = 2;
  opt.d_tel = 0.5;
  opt.use_st_lp = true;
  auto result = RunAvgSt(inst, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->config.CheckValid().ok());
  EXPECT_EQ(SizeConstraintViolation(result->config, 2), 0);
}

TEST(AvgStTest, LooseCapsMatchPlainAvgQuality) {
  SvgicInstance inst = MakePaperExample(0.5);
  StOptions loose;
  loose.size_cap = 4;  // n = 4, never binding
  loose.avg.seed = 3;
  auto st = RunAvgSt(inst, loose);
  ASSERT_TRUE(st.ok());
  const double v = Evaluate(inst, st->config).ScaledTotal();
  EXPECT_GE(v, 8.0);  // comfortably above the worst baseline range
}

TEST(AvgStTest, TeleportationAddsUtilityUnderStObjective) {
  // With d_tel > 0 the ST objective can only gain from indirect pairs.
  SvgicInstance inst = MakePaperExample(0.5);
  StOptions opt;
  opt.size_cap = 2;
  opt.avg.seed = 5;
  auto result = RunAvgSt(inst, opt);
  ASSERT_TRUE(result.ok());
  EvaluateOptions with_tel;
  with_tel.d_tel = 0.5;
  const double st_total = Evaluate(inst, result->config, with_tel).Total();
  const double plain_total = Evaluate(inst, result->config).Total();
  EXPECT_GE(st_total, plain_total - 1e-9);
}

TEST(AvgStTest, RejectsBadCap) {
  SvgicInstance inst = MakePaperExample(0.5);
  StOptions opt;
  opt.size_cap = 0;
  EXPECT_FALSE(RunAvgSt(inst, opt).ok());
}

TEST(StPrepartitionTest, SubInstancePreservesUtilities) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto sub = ExtractSubInstance(inst, {kAlice, kDave});
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->num_users(), 2);
  // Alice is 0, Dave is 1 in the sub-instance.
  EXPECT_NEAR(sub->p(0, 4), 1.0, 1e-5);
  EXPECT_NEAR(sub->p(1, 3), 1.0, 1e-5);
  ASSERT_EQ(sub->pairs().size(), 1u);
  EXPECT_NEAR(sub->pairs()[0].WeightOf(4), 0.45, 1e-5);  // tau(A,D)+tau(D,A)
}

TEST(StPrepartitionTest, MergedConfigurationIsComplete) {
  SvgicInstance inst = RandomInstance(12, 15, 3, 9);
  auto merged = RunWithPrepartition(
      inst, /*size_cap=*/4, /*seed=*/1,
      [](const SvgicInstance& sub) { return RunPersonalizedTopK(sub); });
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_TRUE(merged->CheckValid().ok());
}

TEST(StPrepartitionTest, PrepartitionReducesFmgViolations) {
  // FMG displays the same bundle to everyone: without pre-partition every
  // slot is one group of n users; with pre-partition groups are <= cap
  // unless two parts collide on the same item (the Figure 13 effect).
  SvgicInstance inst = RandomInstance(16, 20, 3, 4);
  const int cap = 4;
  auto np = RunFmg(inst);
  ASSERT_TRUE(np.ok());
  const int violations_np = SizeConstraintViolation(*np, cap);
  auto p = RunWithPrepartition(
      inst, cap, 1,
      [](const SvgicInstance& sub) { return RunFmg(sub); });
  ASSERT_TRUE(p.ok());
  const int violations_p = SizeConstraintViolation(*p, cap);
  EXPECT_GT(violations_np, 0);
  EXPECT_LT(violations_p, violations_np);
}

}  // namespace
}  // namespace savg
