// End-to-end validation against the paper's running example (Examples 1-5,
// Tables 1 and 6-9): the 4-user / 5-item digital-photography store.
//
// Every expected number below is stated in the paper (Example 5 lists the
// scaled totals of all approaches; Example 2 gives w_A(u_A, c1) = 0.64 at
// lambda = 0.4) and was re-derived by hand from Table 1.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/fmg.h"
#include "baselines/ip_exact.h"
#include "baselines/per.h"
#include "core/avg.h"
#include "core/avg_d.h"
#include "core/lp_formulation.h"
#include "core/objective.h"
#include "core/problem.h"
#include "paper_example.h"

namespace savg {
namespace {

TEST(PaperExampleTest, InstanceIsValid) {
  SvgicInstance inst = MakePaperExample(0.5);
  ASSERT_TRUE(inst.Validate().ok()) << inst.Validate();
  EXPECT_EQ(inst.num_users(), 4);
  EXPECT_EQ(inst.num_items(), 5);
  EXPECT_EQ(inst.num_slots(), 3);
  // Friend pairs: {A,B}, {A,C}, {A,D}, {B,C}.
  EXPECT_EQ(inst.pairs().size(), 4u);
}

TEST(PaperExampleTest, Example2SavgUtility) {
  // Example 2: lambda = 0.4; Alice co-displayed the tripod (c1) with Bob
  // and Dave at slot 2 => w_A(u_A, c1) = 0.6*0.8 + 0.4*(0.2+0.2) = 0.64.
  SvgicInstance inst = MakePaperExample(0.4);
  const double w = 0.6 * inst.p(kAlice, 0) +
                   0.4 * (inst.Tau(kAlice, kBob, 0) +
                          inst.Tau(kAlice, kDave, 0));
  EXPECT_NEAR(w, 0.64, 1e-6);
}

TEST(PaperExampleTest, SavgConfigurationScores1035) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config = MakeSavgOptimalConfig();
  ASSERT_TRUE(config.CheckValid().ok());
  const ObjectiveBreakdown obj = Evaluate(inst, config);
  EXPECT_NEAR(obj.preference, 8.0, 1e-6);
  EXPECT_NEAR(obj.social_direct, 2.35, 1e-6);
  EXPECT_NEAR(obj.ScaledTotal(), 10.35, 1e-6);
}

TEST(PaperExampleTest, AvgTable7Scores975) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config = MakeAvgTable7Config();
  EXPECT_NEAR(Evaluate(inst, config).ScaledTotal(), 9.75, 1e-6);
}

TEST(PaperExampleTest, AvgDTable8Scores985) {
  SvgicInstance inst = MakePaperExample(0.5);
  Configuration config = MakeAvgDTable8Config();
  EXPECT_NEAR(Evaluate(inst, config).ScaledTotal(), 9.85, 1e-6);
}

TEST(PaperExampleTest, BaselineTable9Scores) {
  SvgicInstance inst = MakePaperExample(0.5);
  // Personalized: 8.25; group: 8.35; subgroup-by-friendship: 8.4;
  // subgroup-by-preference: 8.7 (Example 5).
  EXPECT_NEAR(Evaluate(inst, MakePersonalizedConfig()).ScaledTotal(), 8.25,
              1e-6);
  EXPECT_NEAR(Evaluate(inst, MakeGroupConfig()).ScaledTotal(), 8.35, 1e-6);
  EXPECT_NEAR(Evaluate(inst, MakeSubgroupByFriendshipConfig()).ScaledTotal(),
              8.4, 1e-6);
  EXPECT_NEAR(Evaluate(inst, MakeSubgroupByPreferenceConfig()).ScaledTotal(),
              8.7, 1e-6);
}

TEST(PaperExampleTest, PerBaselineReproducesPersonalizedColumn) {
  // Our PER implementation must reproduce the paper's personalized top-3
  // assignment (up to ties; Table 1 has none in each user's top 3).
  SvgicInstance inst = MakePaperExample(0.5);
  auto config = RunPersonalizedTopK(inst);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_NEAR(Evaluate(inst, *config).ScaledTotal(), 8.25, 1e-6);
  // Alice's top 3: c5 (1.0), c2 (0.85), c1 (0.8).
  EXPECT_EQ(config->At(kAlice, 0), 4);
  EXPECT_EQ(config->At(kAlice, 1), 1);
  EXPECT_EQ(config->At(kAlice, 2), 0);
}

TEST(PaperExampleTest, BruteForceOptimumIs1035) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto opt = SolveBruteForce(inst);
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_NEAR(opt->scaled_objective, 10.35, 1e-6);
}

TEST(PaperExampleTest, IpExactMatchesBruteForce) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto ip = SolveIpExact(inst);
  ASSERT_TRUE(ip.ok()) << ip.status();
  EXPECT_TRUE(ip->proven_optimal);
  EXPECT_NEAR(ip->scaled_objective, 10.35, 1e-6);
}

TEST(PaperExampleTest, LpRelaxationUpperBoundsOptimum) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok()) << frac.status();
  EXPECT_TRUE(frac->exact);
  EXPECT_GE(frac->lp_objective, 10.35 - 1e-6);
  // Each user's fractional mass must be exactly k.
  for (UserId u = 0; u < 4; ++u) {
    double mass = 0.0;
    for (ItemId c = 0; c < 5; ++c) mass += frac->XCompact(u, c);
    EXPECT_NEAR(mass, 3.0, 1e-6);
  }
}

TEST(PaperExampleTest, AvgBeatsAllBaselinesOnExpectation) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  // Average over seeds; the paper reports AVG ~ 9.75 here, well above the
  // best baseline (8.7). Require the empirical mean to clear 9.0.
  double total = 0.0;
  const int runs = 40;
  for (int i = 0; i < runs; ++i) {
    AvgOptions opt;
    opt.seed = 1000 + i;
    auto avg = RunAvg(inst, *frac, opt);
    ASSERT_TRUE(avg.ok()) << avg.status();
    ASSERT_TRUE(avg->config.CheckValid().ok());
    total += Evaluate(inst, avg->config).ScaledTotal();
  }
  EXPECT_GE(total / runs, 9.0);
}

TEST(PaperExampleTest, AvgDIsNearOptimalHere) {
  SvgicInstance inst = MakePaperExample(0.5);
  auto frac = SolveRelaxation(inst);
  ASSERT_TRUE(frac.ok());
  auto avg_d = RunAvgD(inst, *frac);
  ASSERT_TRUE(avg_d.ok()) << avg_d.status();
  ASSERT_TRUE(avg_d->config.CheckValid().ok());
  const double value = Evaluate(inst, avg_d->config).ScaledTotal();
  // The paper's AVG-D reaches 9.85 of OPT 10.35; ours must at least land in
  // the same near-optimal band (> every baseline).
  EXPECT_GE(value, 9.5);
  EXPECT_LE(value, 10.35 + 1e-6);
}

TEST(PaperExampleTest, FmgMatchesGroupApproachShape) {
  // FMG with zero fairness weight reduces to the paper's group approach:
  // top-3 items by aggregate utility = <c5, c1, c2> and a total of 8.35.
  SvgicInstance inst = MakePaperExample(0.5);
  FmgOptions opt;
  opt.fairness_weight = 0.0;
  auto config = RunFmg(inst, opt);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_NEAR(Evaluate(inst, *config).ScaledTotal(), 8.35, 1e-6);
  for (UserId u = 0; u < 4; ++u) {
    EXPECT_EQ(config->At(u, 0), 4);  // c5
    EXPECT_EQ(config->At(u, 1), 0);  // c1
    EXPECT_EQ(config->At(u, 2), 1);  // c2
  }
}

}  // namespace
}  // namespace savg
